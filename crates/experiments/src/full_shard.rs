//! Full-fidelity sharded Worlds — the real monitor + manager stack,
//! partitioned across threads.
//!
//! [`crate::sharded`] scales the *storm traffic pattern* to 100k ranks
//! by replacing the module stack with a lightweight report/cap loop.
//! This harness keeps the real stack: every shard builds the complete
//! [`World`] replica (same seed, same scripted scenario, same TBON)
//! over [`fluxpm_flux::world_shard`], loads the production node agents
//! and power managers *only on the ranks it owns*, and exchanges
//! cross-shard RPC traffic as conservative-window boundary messages.
//! The canonical record stream (power samples, node/job limits, root
//! aggregations, job lifecycle) merges byte-identically for any shard
//! count — see `DESIGN.md` §12 for the replica model and its
//! constraints.
//!
//! Scenario shape mirrors the single-threaded chaos storm: an interior
//! batch kill, deterministic random fail/recover ticks (never the
//! root — sharded worlds pin the root services to shard 0), bursty
//! per-link loss, optional congestion windows, staggered fixed-length
//! jobs under a proportional global power bound, and mid-storm monitor
//! reductions. Two deliberate deviations from the chaos harness, both
//! forced by the replica model: job programs are fixed-duration (their
//! progress must not read shard-local throttle state), and the
//! congestion-avoidance link monitor stays off (it acts on per-shard
//! delivery observations and would steer replicas apart).

use fluxpm_flux::{
    run_world_sharded, CongestionBurst, FaultPlan, FluxEngine, GilbertElliott, JobId, JobProgram,
    JobSpec, LinkProfile, Rank, ShardPlan, ShardRecord, SharedModule, StepCtx, StepOutcome, World,
    WorldRunStats, WorldShard,
};
use fluxpm_hw::{MachineKind, NodeId, PowerDemand, Watts};
use fluxpm_manager::ManagerConfig;
use fluxpm_monitor::{MonitorConfig, MonitorQuery, QueryHandle, SubscriptionFilter};
use fluxpm_sim::{Engine, SimDuration, SimTime, Xoshiro256pp};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

/// Shape of one full-fidelity sharded run. Every knob is part of the
/// replicated scenario: two configs that compare traces must be
/// identical except for `shards`.
#[derive(Debug, Clone)]
pub struct FullShardConfig {
    /// Instance size in brokers/nodes (minimum 16: the scripted batch
    /// kill assumes the interior ranks it targets exist).
    pub nodes: u32,
    /// Worker shards. 1 is the single-threaded reference run.
    pub shards: usize,
    /// World seed; also salts the deterministic fault and retry hashes.
    pub seed: u64,
    /// TBON per-hop latency in microseconds. This is also the
    /// conservative lookahead: congestion and jitter only *add* delay
    /// on top of it, so fatter hops mean fewer coordinator barriers.
    pub hop_latency_us: u64,
    /// Layer seeded congestion windows over the death storm.
    pub congestion: bool,
    /// Deterministic fail/recover ticks, one every 5 s starting at
    /// `t = 30 s`. The root rank is never a victim.
    pub storm_ticks: u64,
    /// Short filler jobs submitted behind the two headline jobs.
    pub filler_jobs: u64,
    /// Node-agent sensor sampling cadence.
    pub sample_interval: SimDuration,
    /// Node-agent push-telemetry cadence (steady upward cross-shard
    /// traffic). `None` disables pushes.
    pub push_interval: Option<SimDuration>,
    /// Extra congestion windows layered onto the fault plan (link,
    /// active window, optional burst shape — `None` means a sustained
    /// 0.999 squeeze). The property sweep uses this to fuzz window
    /// geometry.
    pub extra_congestion: Vec<(
        Rank,
        Rank,
        std::ops::Range<SimTime>,
        Option<CongestionBurst>,
    )>,
    /// Ranks that attach a streaming telemetry subscriber to their
    /// local [`fluxpm_monitor::TelemetryRelay`] at `t = 6 s` and poll
    /// it every 5 s from `t = 10 s`. Every delivered delta becomes a
    /// canonical [`fluxpm_flux::shard::rec::RELAY_DELIVER`] record on
    /// the draining (root-owner) shard, so the per-subscriber stream
    /// through the TBON-distributed fan-out plane is part of the
    /// replica equivalence contract. Empty (the default) keeps the
    /// subscription plane idle and the wire silent.
    pub subscribe_ranks: Vec<u32>,
}

impl FullShardConfig {
    /// Standard 128-rank-class scenario: full storm script, 2 s
    /// sampling, 1 s pushes, congestion off.
    pub fn new(nodes: u32, shards: usize, seed: u64) -> FullShardConfig {
        FullShardConfig {
            nodes,
            shards,
            seed,
            hop_latency_us: 200,
            congestion: false,
            storm_ticks: 6,
            filler_jobs: 5,
            sample_interval: SimDuration::from_secs(2),
            push_interval: Some(SimDuration::from_secs(1)),
            extra_congestion: Vec::new(),
            subscribe_ranks: Vec::new(),
        }
    }

    /// Standard scenario with bursty congestion windows layered on.
    pub fn congested(nodes: u32, shards: usize, seed: u64) -> FullShardConfig {
        FullShardConfig {
            congestion: true,
            ..FullShardConfig::new(nodes, shards, seed)
        }
    }

    /// Fleet soak: a 100k-rank-class instance with the real stack at
    /// relaxed cadences — long sampling, no pushes, a short storm, and
    /// narrow jobs so the replicated executor stays cheap.
    pub fn fleet(nodes: u32, shards: usize, seed: u64) -> FullShardConfig {
        FullShardConfig {
            storm_ticks: 2,
            filler_jobs: 1,
            sample_interval: SimDuration::from_secs(10),
            push_interval: None,
            ..FullShardConfig::new(nodes, shards, seed)
        }
    }

    /// Simulated horizon: the storm script plus settle time.
    pub fn horizon(&self) -> SimTime {
        let last_tick_s = 30 + 5 * self.storm_ticks.saturating_sub(1);
        SimTime::from_secs(last_tick_s + 45)
    }
}

/// Everything a full-fidelity sharded run reports.
#[derive(Debug, Clone)]
pub struct FullShardOutcome {
    /// FNV-1a fingerprint of the canonical merged record stream —
    /// identical for every shard count of the same scenario.
    pub trace_hash: u64,
    /// Records in the merged stream.
    pub records: usize,
    /// Coordinator + per-shard runtime decomposition.
    pub stats: WorldRunStats,
}

/// A fixed-duration phase-demand job program.
///
/// Replica-safe by construction: its demand and its completion time
/// are pure functions of the phase clock, never of node state. The
/// workload-model [`fluxpm_workloads::App`] reads its nodes' throttle
/// factors and stolen CPU time to slow down — exactly the shard-local
/// state that diverges between replicas (limits are only *applied* on
/// the owner shard) — so it cannot run inside a sharded world.
pub struct PhaseApp {
    duration_s: f64,
    period_s: f64,
    started_at: Option<SimTime>,
}

impl PhaseApp {
    /// A program that runs exactly `duration_s`, alternating between a
    /// hot and a cool power phase every `period_s`.
    pub fn new(duration_s: f64, period_s: f64) -> PhaseApp {
        PhaseApp {
            duration_s,
            period_s,
            started_at: None,
        }
    }

    /// Demand at phase-clock `t`: a square wave between 90 % and 35 %
    /// of the dynamic range, identical on every node.
    fn demand_at(&self, t: f64, arch: &fluxpm_hw::NodeArch) -> PowerDemand {
        let hot = ((t / self.period_s) as u64).is_multiple_of(2);
        let frac = if hot { 0.9 } else { 0.35 };
        let lerp = |lo: Watts, hi: Watts| Watts(lo.get() + frac * (hi.get() - lo.get()));
        PowerDemand {
            cpu: vec![lerp(arch.cpu_idle, arch.cpu_peak); arch.sockets],
            memory: lerp(arch.mem_idle, arch.mem_peak),
            gpu: vec![lerp(arch.gpu_idle, arch.gpu_peak); arch.gpus],
            other: arch.other,
        }
        .clamp_to_envelope(arch)
    }
}

impl JobProgram for PhaseApp {
    fn app_name(&self) -> &str {
        "PhaseApp"
    }

    fn on_start(&mut self, ctx: &mut StepCtx<'_>) {
        self.started_at = Some(ctx.now);
        for node in &mut ctx.nodes {
            let d = self.demand_at(0.0, &node.arch);
            node.set_demand(d);
        }
    }

    fn step(&mut self, ctx: &mut StepCtx<'_>) -> StepOutcome {
        let start = self.started_at.expect("step before on_start");
        let t = (ctx.now - start).as_secs_f64();
        if t >= self.duration_s {
            return StepOutcome::Done {
                leftover_seconds: (t - self.duration_s).min(ctx.dt),
            };
        }
        for node in &mut ctx.nodes {
            let d = self.demand_at(t, &node.arch);
            node.set_demand(d);
        }
        StepOutcome::Running
    }
}

/// Build one shard's replica world: the complete scripted scenario,
/// with module loads and message sends confined to owned ranks by the
/// sharding layer.
fn build_shard(cfg: &FullShardConfig, shard: usize) -> WorldShard {
    let nodes = cfg.nodes;
    let seed = cfg.seed;
    assert!(nodes >= 16, "the storm script needs at least 16 ranks");
    let batch = (nodes / 16).max(2);
    let min_live = (nodes as usize) * 3 / 8;
    let kill_width = 1 + u64::from(nodes / 16);
    let wide = nodes / 2;
    let global_bound_w = f64::from(nodes) * 1500.0;

    let mut w = World::new(MachineKind::Lassen, nodes, seed);
    w.tbon.hop_latency = SimDuration::from_micros(cfg.hop_latency_us);
    // Each shard computes its own plan copy: the plan is a pure
    // function of the fresh k-ary tree, so every replica agrees.
    let plan = Arc::new(ShardPlan::for_tbon(&w.tbon, cfg.shards));
    w.enable_sharding(shard, plan, seed);
    // Payload types that may cross a shard cut. Registration order is
    // part of the wire contract: identical on every shard.
    w.register_wire_type::<fluxpm_monitor::MonitorRequest>();
    w.register_wire_type::<fluxpm_monitor::MonitorReply>();
    w.register_wire_type::<fluxpm_manager::ManagerRequest>();
    w.register_wire_type::<fluxpm_manager::ManagerReply>();
    w.register_wire_type::<JobId>();
    w.register_wire_type::<()>();

    w.autostop_after = Some(2 + cfg.filler_jobs);
    let mut eng: FluxEngine = Engine::new();

    // Manager stack: node-level everywhere (the load guard skips
    // unowned ranks), job- and cluster-level on the root shard.
    let mgr_cfg = ManagerConfig::proportional(Watts(global_bound_w));
    for rank in w.tbon.ranks().collect::<Vec<_>>() {
        let m = fluxpm_manager::NodeLevelManager::shared_with_target(
            mgr_cfg.policy,
            mgr_cfg.fpp.clone(),
            mgr_cfg.fpp_target,
        );
        w.load_module(&mut eng, rank, m);
    }
    w.load_module(&mut eng, Rank(0), fluxpm_manager::JobLevelManager::shared());
    w.load_module(
        &mut eng,
        Rank(0),
        fluxpm_manager::ClusterLevelManager::shared(mgr_cfg.clone()),
    );
    {
        let mgr_cfg = mgr_cfg.clone();
        w.register_module_factory(move |_rank| -> SharedModule {
            fluxpm_manager::NodeLevelManager::shared_with_target(
                mgr_cfg.policy,
                mgr_cfg.fpp.clone(),
                mgr_cfg.fpp_target,
            )
        });
    }

    // Monitor stack at the configured cadences. Sample pushes are the
    // steady node -> root cross-shard traffic.
    let mut mon_cfg = MonitorConfig::default().with_sample_interval(cfg.sample_interval);
    if let Some(push) = cfg.push_interval {
        mon_cfg = mon_cfg.with_push_interval(push);
    }
    fluxpm_monitor::load(&mut w, &mut eng, mon_cfg);
    w.install_executor(&mut eng);

    // Per-link burst faults, deterministic mode: loss, jitter, and
    // congestion state are pure hashes of (seed, link, message, hop),
    // so every replica sees the same network weather.
    let ge = GilbertElliott {
        p_good_to_bad: 0.01,
        p_bad_to_good: 0.2,
        good_drop_prob: 0.01,
        bad_drop_prob: 0.3,
    };
    let mut plan = FaultPlan::uniform(0.01, SimDuration::from_micros(20))
        .with_burst(ge)
        .with_link(
            Rank(0),
            Rank(1),
            LinkProfile::uniform(0.04, SimDuration::from_micros(40)).with_burst(ge),
        );
    if cfg.congestion {
        let last_tick_s = 30 + 5 * cfg.storm_ticks.saturating_sub(1);
        plan = plan
            .with_congestion(
                Rank(0),
                Rank(2),
                SimTime::from_secs(5)..SimTime::from_secs(13),
                0.999,
            )
            .with_bursty_congestion(
                Rank(0),
                Rank(1),
                SimTime::from_secs(30)..SimTime::from_secs(last_tick_s + 10),
                CongestionBurst {
                    p_calm_to_congested: 0.2,
                    p_congested_to_calm: 0.25,
                    calm_severity: 0.0,
                    congested_severity: 0.999,
                },
            )
            .with_congestion(
                Rank(1),
                Rank(3),
                SimTime::from_secs(40)..SimTime::from_secs(50),
                0.999,
            );
    }
    for (a, b, window, burst) in &cfg.extra_congestion {
        plan = match burst {
            Some(burst) => plan.with_bursty_congestion(*a, *b, window.clone(), *burst),
            None => plan.with_congestion(*a, *b, window.clone(), 0.999),
        };
    }
    w.install_fault_plan(plan.deterministic(seed));
    // Post-churn shape restoration is purely structural (attached +
    // alive state, which replicates), so it stays on. The link monitor
    // does NOT: it reparents on per-shard delivery observations.
    w.schedule_rebalance(&mut eng, SimDuration::from_secs(7));

    // Job A pins the bottom half of the machine; B rides out the storm
    // on a narrow allocation. Both are fixed-duration phase apps.
    let a = w.submit(
        &mut eng,
        JobSpec::new("PhaseApp", wide),
        Box::new(PhaseApp::new(60.0, 7.0)),
    );
    let b = w.submit(
        &mut eng,
        JobSpec::new("PhaseApp", 4),
        Box::new(PhaseApp::new(45.0, 5.0)),
    );
    for k in 0..cfg.filler_jobs {
        eng.schedule(SimTime::from_secs(4 + 8 * k), move |w: &mut World, eng| {
            w.submit(
                eng,
                JobSpec::new("PhaseApp", 2),
                Box::new(PhaseApp::new(12.0, 3.0)),
            );
        });
    }

    // Mid-storm monitor reductions from the root vantage. The handles
    // stay unread: the queries exist to drive tree-wide fan-out RPCs
    // and the root-aggregation records they produce on shard 0.
    eng.schedule(SimTime::from_secs(18), move |w: &mut World, eng| {
        let _ = MonitorQuery::job_stats_tree(a).send(w, eng);
    });
    eng.schedule(SimTime::from_secs(38), move |w: &mut World, eng| {
        let _ = MonitorQuery::job_stats_tree(b).send(w, eng);
    });

    // Streaming subscribers attached at their local relays: steady
    // root -> leaf fan-out traffic through the TBON-distributed
    // subscription plane, riding out the storm. Subscribe and poll
    // RPCs originate at the root (the client vantage), so the handles
    // only resolve on the root-owner shard — exactly where the
    // delivered-delta records must be emitted. A poll whose serving
    // broker is down (or whose relay was rebuilt, forgetting the id)
    // errors deterministically and records nothing.
    for &sub_rank in &cfg.subscribe_ranks {
        // The subscribe handshake rides fire-and-forget tree events
        // (climb + seed), so under the lossy fault plan an attempt can
        // vanish; like any production client, retry on timeout until
        // one attempt lands. All attempts and retries are driven by
        // client-visible state, so the traffic replays identically on
        // every shard count.
        let attempts: Rc<RefCell<Vec<QueryHandle>>> = Rc::new(RefCell::new(Vec::new()));
        for i in 0..4u64 {
            let attempts = Rc::clone(&attempts);
            let at = SimTime::from_secs(6) + SimDuration::from_millis(1500 * i);
            eng.schedule(at, move |w: &mut World, eng| {
                let landed = attempts
                    .borrow()
                    .iter()
                    .any(|q| matches!(q.subscription(), Some(Ok(_))));
                if landed {
                    return;
                }
                let q = MonitorQuery::subscribe(SubscriptionFilter::all())
                    .at(Rank(sub_rank))
                    .send(w, eng);
                attempts.borrow_mut().push(q);
            });
        }
        for k in 0..8u64 {
            let attempts = Rc::clone(&attempts);
            let at = SimTime::from_secs(10 + 5 * k);
            eng.schedule(at, move |w: &mut World, eng| {
                let id = attempts
                    .borrow()
                    .iter()
                    .find_map(|q| match q.subscription() {
                        Some(Ok(id)) => Some(id),
                        _ => None,
                    });
                let Some(id) = id else { return };
                let q = MonitorQuery::poll(id, 4096).at(Rank(sub_rank)).send(w, eng);
                eng.schedule(
                    at + SimDuration::from_millis(900),
                    move |w: &mut World, _| {
                        if let Some(Ok(batch)) = q.deltas() {
                            for d in &batch.deltas {
                                w.record(
                                    at,
                                    sub_rank,
                                    fluxpm_flux::shard::rec::RELAY_DELIVER,
                                    d.seq,
                                    u64::from(d.node),
                                );
                            }
                        }
                    },
                );
            });
        }
    }

    // --- Scripted storm prefix -------------------------------------
    // t=12: a batch of interior ranks dies at once; t=22: recovery.
    eng.schedule(SimTime::from_secs(12), move |w: &mut World, eng| {
        let victims: Vec<NodeId> = (1..=batch).map(NodeId).collect();
        w.fail_nodes(eng, &victims);
    });
    eng.schedule(SimTime::from_secs(22), move |w: &mut World, eng| {
        for i in 1..=batch {
            assert!(w.recover_node(eng, NodeId(i)));
        }
    });

    // --- Deterministic storm ticks ---------------------------------
    // Same recover-then-kill shape as the chaos storm, but the tick
    // RNG is a pure function of (seed, k) — replicated, not shared —
    // and the root rank is never killed: sharded worlds pin the root
    // services to shard 0 and do not support root failover.
    for k in 0..cfg.storm_ticks {
        let at = SimTime::from_secs(30 + 5 * k);
        eng.schedule(at, move |w: &mut World, eng| {
            let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 0xF0_11D ^ (k << 32));
            for i in 0..w.size() {
                if !w.broker_up(Rank(i)) && rng.chance(0.45) {
                    assert!(w.recover_node(eng, NodeId(i)), "guarded: broker was down");
                }
            }
            let mut up: Vec<u32> = (1..w.size()).filter(|&i| w.broker_up(Rank(i))).collect();
            let spare = up.len().saturating_sub(min_live);
            let kill = spare.min(1 + rng.below(kill_width) as usize);
            let mut victims = Vec::new();
            for _ in 0..kill {
                let idx = rng.below(up.len() as u64) as usize;
                victims.push(NodeId(up.remove(idx)));
            }
            if !victims.is_empty() {
                w.fail_nodes(eng, &victims);
            }
        });
    }

    // --- Storm over: recover everything ----------------------------
    let settle_s = 30 + 5 * cfg.storm_ticks.saturating_sub(1) + 10;
    eng.schedule(SimTime::from_secs(settle_s), move |w: &mut World, eng| {
        for i in 1..w.size() {
            if !w.broker_up(Rank(i)) {
                assert!(w.recover_node(eng, NodeId(i)), "guarded: broker was down");
            }
        }
    });

    WorldShard::new(w, eng)
}

/// Run one full-fidelity sharded scenario and fingerprint its merged
/// canonical record stream.
pub fn full_shard_run(cfg: &FullShardConfig) -> (Vec<ShardRecord>, FullShardOutcome) {
    let lookahead = SimDuration::from_micros(cfg.hop_latency_us);
    let horizon = cfg.horizon();
    let (records, stats) = run_world_sharded(cfg.shards, lookahead, horizon, |shard| {
        build_shard(cfg, shard)
    });
    let out = FullShardOutcome {
        trace_hash: fluxpm_flux::records_hash(&records),
        records: records.len(),
        stats,
    };
    (records, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_are_produced_and_merged_sorted() {
        let cfg = FullShardConfig::new(16, 2, 11);
        let (records, out) = full_shard_run(&cfg);
        assert!(out.records > 0, "the stack must emit canonical records");
        assert!(records.windows(2).all(|w| w[0] <= w[1]));
        // Every record family shows up: samples, node limits, job
        // limits, root aggregations, job lifecycle.
        for code in [
            fluxpm_flux::shard::rec::POWER_SAMPLE,
            fluxpm_flux::shard::rec::NODE_LIMIT,
            fluxpm_flux::shard::rec::JOB_LIMIT,
            fluxpm_flux::shard::rec::JOB_EVENT,
        ] {
            assert!(
                records.iter().any(|r| r.code == code),
                "no record with code {code}"
            );
        }
    }

    #[test]
    fn relay_streams_agree_across_shard_counts() {
        // Subscribers at an interior rank and a deep leaf, chosen to
        // dodge the scripted t=12 batch kill (ranks 1..=2 at 16
        // nodes) so the streams stay live through the storm prefix.
        let mut base = FullShardConfig::new(16, 1, 13);
        base.subscribe_ranks = vec![5, 15];
        let (records, one) = full_shard_run(&base);
        let delivered = records
            .iter()
            .filter(|r| r.code == fluxpm_flux::shard::rec::RELAY_DELIVER)
            .count();
        assert!(
            delivered > 20,
            "relay subscribers must stream through the storm, got {delivered}"
        );
        // Both subscriber vantages must appear in the record stream.
        for rank in [5u32, 15] {
            assert!(
                records
                    .iter()
                    .any(|r| r.code == fluxpm_flux::shard::rec::RELAY_DELIVER && r.rank == rank),
                "no delivered deltas recorded at rank {rank}"
            );
        }
        for shards in [2usize, 4, 8] {
            let mut cfg = base.clone();
            cfg.shards = shards;
            let (_, n) = full_shard_run(&cfg);
            assert_eq!(
                one.trace_hash, n.trace_hash,
                "per-subscriber relay streams diverged: shards=1 vs {shards}"
            );
            assert_eq!(one.records, n.records);
        }
    }

    #[test]
    fn shard_counts_agree_at_16_ranks() {
        let base = FullShardConfig::new(16, 1, 7);
        let (_, one) = full_shard_run(&base);
        for shards in [2usize, 4] {
            let mut cfg = base.clone();
            cfg.shards = shards;
            let (_, n) = full_shard_run(&cfg);
            assert_eq!(one.trace_hash, n.trace_hash, "shards=1 vs {shards}");
            assert_eq!(one.records, n.records);
            let crossed: u64 = n.stats.shard_boundary_out.iter().sum();
            assert!(crossed > 0, "traffic must cross cuts");
        }
    }
}
