//! # fluxpm-experiments — regenerate every table and figure of the paper
//!
//! Each experiment module reproduces one artifact of the SC'24 paper's
//! evaluation (§IV) on the simulated substrate and prints the same rows
//! or series the paper reports, alongside the paper's own numbers where
//! applicable. Machine-readable CSVs land in `results/`.
//!
//! | module | paper artifact |
//! |---|---|
//! | [`experiments::fig1`] | Fig. 1 — power timelines (LAMMPS, Quicksilver, 1 Lassen node) |
//! | [`experiments::fig2`] | Fig. 2 — per-component power across node counts, both machines |
//! | [`experiments::table2`] | Table II — cross-machine runtime/power/energy |
//! | [`experiments::fig3`] | Fig. 3 — monitor overhead per app/node count |
//! | [`experiments::fig4`] | Fig. 4 — run-to-run variability box data |
//! | [`experiments::table3`] | Table III — static IBM node caps |
//! | [`experiments::table4`] | Table IV — policy comparison (static/proportional/FPP) |
//! | [`experiments::fig5`] | Fig. 5 — proportional-sharing timeline |
//! | [`experiments::fig6`] | Fig. 6 — FPP timeline |
//! | [`experiments::fig7`] | Fig. 7 — non-MPI (Charm++) proportional capping |
//! | [`experiments::queue`] | §IV-E — 10-job queue on 16 nodes |
//!
//! Run everything: `cargo run -p fluxpm-experiments --bin run_all`.

#![warn(missing_docs)]
pub mod chaos;
pub mod experiments;
pub mod full_shard;
pub mod report;
pub mod scenario;
pub mod sharded;
pub mod stats;

pub use report::{JobResult, RunReport};
pub use scenario::{JobRequest, PowerSetup, Scenario};

use std::path::{Path, PathBuf};

/// Directory experiment CSVs are written to (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir).expect("create results dir");
    dir.to_path_buf()
}

/// Write a CSV (or any text artifact) into the results directory.
pub fn write_artifact(name: &str, contents: &str) -> PathBuf {
    let path = results_dir().join(name);
    std::fs::write(&path, contents).expect("write artifact");
    path
}
