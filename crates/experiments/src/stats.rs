//! Small descriptive-statistics helpers shared by the experiment
//! printers (repetition summaries, box plots, overhead percentages).

/// Arithmetic mean (0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation (0 for fewer than 2 samples).
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Linear-interpolated percentile, `p` in `[0, 100]`. Panics on empty
/// input.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty sample");
    let mut s = xs.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let rank = (p.clamp(0.0, 100.0) / 100.0) * (s.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        s[lo]
    } else {
        let frac = rank - lo as f64;
        s[lo] * (1.0 - frac) + s[hi] * frac
    }
}

/// Median.
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

/// Five-number box-plot summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxSummary {
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

impl BoxSummary {
    /// Summarize a sample (panics on empty input).
    pub fn of(xs: &[f64]) -> BoxSummary {
        BoxSummary {
            min: percentile(xs, 0.0),
            q1: percentile(xs, 25.0),
            median: percentile(xs, 50.0),
            q3: percentile(xs, 75.0),
            max: percentile(xs, 100.0),
        }
    }

    /// Relative spread `(max - min) / min`, the paper's Fig. 4 metric.
    pub fn spread(&self) -> f64 {
        if self.min == 0.0 {
            0.0
        } else {
            (self.max - self.min) / self.min
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0, 6.0]), 4.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        let sd = std_dev(&[2.0, 4.0, 6.0]);
        assert!((sd - 2.0).abs() < 1e-12);
    }

    #[test]
    fn percentiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert_eq!(median(&xs), 2.5);
        assert_eq!(percentile(&xs, 25.0), 1.75);
        // Order-independence.
        let shuffled = [3.0, 1.0, 4.0, 2.0];
        assert_eq!(median(&shuffled), 2.5);
    }

    #[test]
    fn box_summary() {
        let xs = [10.0, 12.0, 11.0, 13.0, 14.0, 10.5];
        let b = BoxSummary::of(&xs);
        assert_eq!(b.min, 10.0);
        assert_eq!(b.max, 14.0);
        assert!(b.q1 <= b.median && b.median <= b.q3);
        assert!((b.spread() - 0.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_percentile_panics() {
        percentile(&[], 50.0);
    }
}
