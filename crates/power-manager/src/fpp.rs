//! The FFT-based dynamic power policy (FPP), paper Algorithm 1.
//!
//! Per GPU, FPP runs an epoch loop (every `powercap_time` = 90 s):
//!
//! 1. `FFT-GET-PERIOD`: estimate the dominant period of the GPU's power
//!    signal over the epoch's samples,
//! 2. `GET-GPU-CAP`: compare against the previous epoch's period and
//!    move the cap —
//!    * |Δ| ≤ 2 s (`converge_th`): the application is unaffected at the
//!      current cap → **converge** (stop adjusting),
//!    * Δ < 0 and 2 s < |Δ| < 5 s (`change_th`): still unaffected →
//!      **reduce** by `P_reduce` = 50 W,
//!    * otherwise: the application *is* affected → **give the power
//!      back** (paper: "FPP first tries to reduce power but sees that
//!      the period doubles and instantly gives back the power") and
//!      converge.
//!
//! The first epoch measures a baseline and issues the initial downward
//! probe. For applications with *no* detectable period (flat-power codes
//! like GEMM under a binding cap), the controller falls back to a
//! cap-binding test: if the GPU's mean draw sits at the cap, the cap is
//! binding and the power is given back — the same outcome the paper
//! describes via the period-doubling observation.

use fluxpm_fft::period::estimate_period;
use fluxpm_fft::{PeriodAnalyzer, Samples};
use fluxpm_hw::Watts;
use fluxpm_monitor::RingBuffer;
use serde::{Deserialize, Serialize};

/// FPP tuning constants (paper Algorithm 1 defaults; "these values are
/// customizable").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FppConfig {
    /// Epoch length: how often the cap is reconsidered (line 32: 90 s).
    pub powercap_time_s: f64,
    /// Sampling period for the per-GPU power buffer (1 s).
    pub sample_period_s: f64,
    /// Convergence threshold on the period delta (line 12: 2 s).
    pub converge_th_s: f64,
    /// Change threshold on the period delta (line 13: 5 s).
    pub change_th_s: f64,
    /// Downward probe step (line 14: 50 W).
    pub p_reduce: Watts,
    /// Upward step levels (line 16: [10, 15, 25] W).
    pub powercap_levels: [Watts; 3],
    /// Vendor maximum GPU cap (line 35: 300 W for a Volta-class GPU).
    pub max_gpu_cap: Watts,
    /// Vendor minimum GPU cap (100 W).
    pub min_gpu_cap: Watts,
    /// Mean-draw-to-cap distance below which the cap counts as binding
    /// (the no-period fallback).
    pub binding_margin: Watts,
    /// Use Welch's averaged periodogram (segments of half the epoch,
    /// 50 % overlap) instead of the single-window estimate — more robust
    /// on noisy power traces at slightly coarser resolution.
    pub use_welch: bool,
    /// Restore the pre-probe cap gradually — one level-scaled step from
    /// `powercap_levels` per epoch — instead of jumping straight back.
    /// Off by default: the paper's observed behavior is "instantly gives
    /// back the power".
    #[serde(default)]
    pub staged_give_back: bool,
}

impl Default for FppConfig {
    fn default() -> Self {
        FppConfig {
            powercap_time_s: 90.0,
            sample_period_s: 1.0,
            converge_th_s: 2.0,
            change_th_s: 5.0,
            p_reduce: Watts(50.0),
            powercap_levels: [Watts(10.0), Watts(15.0), Watts(25.0)],
            max_gpu_cap: Watts(300.0),
            min_gpu_cap: Watts(100.0),
            binding_margin: Watts(5.0),
            use_welch: false,
            staged_give_back: false,
        }
    }
}

/// What the controller decided at an epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FppDecision {
    /// Keep the current cap (already converged, or first-epoch baseline
    /// not yet complete).
    Keep(Watts),
    /// Set a new cap.
    Set(Watts),
}

impl FppDecision {
    /// The cap in force after the decision.
    pub fn cap(self) -> Watts {
        match self {
            FppDecision::Keep(w) | FppDecision::Set(w) => w,
        }
    }
}

/// Per-GPU FPP controller state (Algorithm 1's MAIN loop state).
///
/// ```
/// use fluxpm_manager::{FppConfig, FppController, FppDecision};
/// use fluxpm_hw::Watts;
///
/// // A GPU limited to 253.5 W (the 1950 W node cap derivation).
/// let mut ctl = FppController::new(FppConfig::default(), Watts(253.5));
///
/// // Epoch 1: measure the baseline, then probe 50 W down.
/// for t in 0..90 {
///     let w = if (t as f64 / 10.0).fract() < 0.3 { 140.0 } else { 55.0 };
///     ctl.store_power_sample(Watts(w));
/// }
/// assert_eq!(ctl.on_epoch(), FppDecision::Set(Watts(203.5)));
///
/// // Epoch 2: the period is unchanged — converge at the reduced cap.
/// for t in 0..90 {
///     let w = if (t as f64 / 10.0).fract() < 0.3 { 140.0 } else { 55.0 };
///     ctl.store_power_sample(Watts(w));
/// }
/// ctl.on_epoch();
/// assert!(ctl.converged());
/// ```
#[derive(Debug, Clone)]
pub struct FppController {
    config: FppConfig,
    /// Device cap bounds (vendor min/max for the controlled device —
    /// GPU or CPU socket; FPP is device-agnostic, paper §III-B2).
    min_cap: Watts,
    max_cap_bound: Watts,
    /// `GPU_Power_Lim`: the cap derived from the node-level limit.
    power_lim: Watts,
    /// `P_cap_cur`.
    cap: Watts,
    /// `P_cap_prev`.
    prev_cap: Option<Watts>,
    /// `T_prev` (seconds), if a period was measurable.
    t_prev: Option<f64>,
    /// `F_converge`.
    converged: bool,
    /// In-flight staged give-back: `(target, per_epoch_step)`. Each
    /// epoch steps the cap toward `target`, converging on arrival.
    restoring: Option<(Watts, Watts)>,
    /// Epochs completed.
    epochs: u64,
    /// Power samples for the current epoch (reset each epoch, line 42).
    ///
    /// A ring, not a `Vec`: per-GPU memory is bounded even if the epoch
    /// timer stalls (the capacity is 4× the expected samples per epoch,
    /// so a healthy epoch never wraps), and the planned analysis path
    /// reads it through a two-slice zero-copy view instead of collecting
    /// the samples into a fresh `Vec` every epoch.
    buffer: RingBuffer<f64>,
}

impl FppController {
    /// New GPU controller. `power_lim` is the GPU cap derived from the
    /// node-level power limit (line 36); the starting cap is
    /// `min(Max_GPU_Cap, GPU_Power_Lim)` (line 37).
    pub fn new(config: FppConfig, power_lim: Watts) -> FppController {
        let (min, max) = (config.min_gpu_cap, config.max_gpu_cap);
        FppController::with_bounds(config, power_lim, min, max)
    }

    /// New controller over an arbitrary device cap range — the
    /// device-agnostic form (paper: FPP "can be easily extended to be
    /// utilized for socket-level or memory-level power capping").
    pub fn with_bounds(
        config: FppConfig,
        power_lim: Watts,
        min_cap: Watts,
        max_cap_bound: Watts,
    ) -> FppController {
        assert!(min_cap <= max_cap_bound);
        let cap = max_cap_bound.min(power_lim).max(min_cap);
        // 4× the expected epoch sample count: generous enough that a
        // healthy epoch (even Welch callers feeding double-length
        // traces) never wraps, while bounding per-device memory if the
        // epoch timer stalls.
        let expected = if config.sample_period_s > 0.0 && config.powercap_time_s.is_finite() {
            (config.powercap_time_s / config.sample_period_s).ceil() as usize
        } else {
            128
        };
        let capacity = expected.saturating_mul(4).max(64);
        FppController {
            config,
            min_cap,
            max_cap_bound,
            power_lim,
            cap,
            prev_cap: None,
            t_prev: None,
            converged: false,
            restoring: None,
            epochs: 0,
            buffer: RingBuffer::new(capacity),
        }
    }

    /// The cap currently requested by the controller.
    pub fn cap(&self) -> Watts {
        self.cap
    }

    /// Whether the controller has converged (line 22–24).
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Epochs completed so far.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Record one power sample (called on the node manager's sampling
    /// timer; line 4 `STOREPOWERDATA`).
    pub fn store_power_sample(&mut self, gpu_draw: Watts) {
        self.buffer.push(gpu_draw.get());
    }

    /// Samples collected in the current epoch.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// The node limit changed (proportional sharing reallocation): track
    /// the new derived limit. A converged controller follows the new
    /// limit directly; an in-flight one re-clamps.
    pub fn rebase(&mut self, power_lim: Watts) {
        let new_start = self.max_cap_bound.min(power_lim).max(self.min_cap);
        if self.converged {
            // Keep any probe savings: never above the previous converged
            // cap relative to the old limit, but follow limit increases
            // when the old cap was limit-bound.
            let old_start = self.max_cap_bound.min(self.power_lim).max(self.min_cap);
            if self.cap >= old_start {
                self.cap = new_start;
            } else {
                self.cap = self.cap.min(new_start);
            }
        } else {
            self.cap = self.cap.min(new_start);
        }
        self.power_lim = power_lim;
    }

    /// Epoch boundary (line 38): estimate the period from the buffered
    /// samples, run `GET-GPU-CAP`, reset the buffer, and return the
    /// decision.
    ///
    /// This is the *reference* path: it copies the buffered samples out
    /// and analyzes them with the unplanned free functions. Production
    /// epoch loops use [`FppController::on_epoch_with`], which produces
    /// byte-identical decisions without the copy or the per-call FFT
    /// setup (`tests/fpp_equivalence.rs` pins the equivalence).
    pub fn on_epoch(&mut self) -> FppDecision {
        if let Some(d) = self.epoch_shortcut() {
            return d;
        }
        let samples: Vec<f64> = self.buffer.iter().copied().collect();
        self.buffer.clear();
        let rate = 1.0 / self.config.sample_period_s;
        let t_cur = if self.config.use_welch {
            let seg = (samples.len() / 2).max(8);
            fluxpm_fft::welch_estimate_period(&samples, rate, seg)
                .or_else(|| estimate_period(&samples, rate))
                .map(|e| e.period_seconds)
        } else {
            estimate_period(&samples, rate).map(|e| e.period_seconds)
        };
        let mean = if samples.is_empty() {
            0.0
        } else {
            samples.iter().sum::<f64>() / samples.len() as f64
        };
        self.decide(t_cur, mean)
    }

    /// Epoch boundary through the planned analytics: identical policy to
    /// [`FppController::on_epoch`], but the samples are read via a
    /// two-slice zero-copy view of the ring and the period estimate runs
    /// on the shared planner/scratch in `analyzer` — zero steady-state
    /// allocation. One analyzer is meant to serve every controller of a
    /// node (its plan caches are keyed by length, so 4–8 GPUs feeding
    /// the same epoch geometry share one warm plan set).
    pub fn on_epoch_with(&mut self, analyzer: &mut PeriodAnalyzer) -> FppDecision {
        if let Some(d) = self.epoch_shortcut() {
            return d;
        }
        let rate = 1.0 / self.config.sample_period_s;
        let (head, tail) = self.buffer.as_slices();
        let view = Samples::new(head, tail);
        let t_cur = if self.config.use_welch {
            let seg = (view.len() / 2).max(8);
            analyzer
                .welch_estimate_period(view, rate, seg)
                .or_else(|| analyzer.estimate_period(view, rate))
                .map(|e| e.period_seconds)
        } else {
            analyzer
                .estimate_period(view, rate)
                .map(|e| e.period_seconds)
        };
        // Summed oldest → newest, the same association order as the
        // copied path — bit-identical mean.
        let mean = view.mean();
        self.buffer.clear();
        self.decide(t_cur, mean)
    }

    /// Shared epoch entry: bump the epoch counter and handle the two
    /// states that never look at the samples (already converged; staged
    /// give-back in flight). Returns `Some(decision)` on those paths —
    /// with the buffer reset, as every epoch boundary must — and `None`
    /// when the caller should analyze the buffered samples.
    fn epoch_shortcut(&mut self) -> Option<FppDecision> {
        self.epochs += 1;
        if self.converged {
            self.buffer.clear();
            return Some(FppDecision::Keep(self.cap));
        }
        // Staged give-back in flight: keep climbing toward the pre-probe
        // cap, one step per epoch, and converge on arrival. The period
        // estimate is irrelevant while restoring — the decision to give
        // the power back has already been made.
        if let Some((target, step)) = self.restoring {
            self.buffer.clear();
            self.cap = (self.cap + step).min(target);
            if self.cap >= target {
                self.restoring = None;
                self.converged = true;
            }
            return Some(FppDecision::Set(self.cap));
        }
        None
    }

    /// `GET-GPU-CAP` (Algorithm 1 lines 10–31), shared verbatim by the
    /// reference and planned epoch paths so their decisions cannot
    /// drift: given this epoch's period estimate and mean draw, move the
    /// cap.
    fn decide(&mut self, t_cur: Option<f64>, mean: f64) -> FppDecision {
        let binding = mean >= self.cap.get() - self.config.binding_margin.get();

        // First epoch: record the baseline and issue the downward probe
        // (P_cap_prev was None — line 19 keeps the cap; the probe is the
        // transition into the adjustment loop).
        if self.epochs == 1 {
            self.t_prev = t_cur;
            self.prev_cap = Some(self.cap);
            let probed = (self.cap - self.config.p_reduce).max(self.min_cap);
            if probed < self.cap {
                self.cap = probed;
                return FppDecision::Set(self.cap);
            }
            // Already at the floor: nothing to probe.
            self.converged = true;
            return FppDecision::Keep(self.cap);
        }

        let decision = match (self.t_prev, t_cur) {
            (Some(prev), Some(cur)) => {
                let delta = cur - prev;
                let abs = delta.abs();
                if abs <= self.config.converge_th_s {
                    // Line 22: unaffected — converge at the (reduced) cap.
                    self.converged = true;
                    FppDecision::Keep(self.cap)
                } else if delta < 0.0 && abs < self.config.change_th_s {
                    // Line 25: still headroom — reduce further.
                    self.prev_cap = Some(self.cap);
                    self.cap = (self.cap - self.config.p_reduce).max(self.min_cap);
                    FppDecision::Set(self.cap)
                } else {
                    // Line 27: affected — give power back and converge.
                    self.give_back(abs)
                }
            }
            // No period measurable: fall back to the binding test.
            _ => {
                if binding {
                    self.give_back(self.config.change_th_s)
                } else {
                    // Cap is slack and the app shows no phase signal: the
                    // probe is harmless; converge where we are.
                    self.converged = true;
                    FppDecision::Keep(self.cap)
                }
            }
        };
        self.t_prev = t_cur.or(self.t_prev);
        decision
    }

    /// Give the power back toward the pre-probe cap. The step size is
    /// scaled by how badly the application was affected (`delta_abs`
    /// against `change_th` picks one of `powercap_levels`). By default
    /// the cap jumps straight to the target — the paper's "instantly
    /// gives back the power" — and converges; with `staged_give_back`
    /// the cap climbs one step per epoch and converges on arrival.
    fn give_back(&mut self, delta_abs: f64) -> FppDecision {
        let target = self
            .prev_cap
            .unwrap_or(self.cap)
            .min(self.max_cap_bound.min(self.power_lim).max(self.min_cap));
        let level = ((delta_abs / self.config.change_th_s) as usize).min(2);
        let step = self.config.powercap_levels[level];
        let stepped = self.cap + step;
        if stepped >= target || !self.config.staged_give_back {
            self.cap = target;
            self.restoring = None;
            self.converged = true;
        } else {
            self.cap = stepped;
            self.restoring = Some((target, step));
        }
        FppDecision::Set(self.cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed_square(c: &mut FppController, period_s: f64, hi: f64, lo: f64, secs: usize) {
        for t in 0..secs {
            let pos = (t as f64 / period_s).fract();
            let w = if pos < 0.3 { hi } else { lo };
            c.store_power_sample(Watts(w));
        }
    }

    fn feed_flat(c: &mut FppController, w: f64, secs: usize) {
        for _ in 0..secs {
            c.store_power_sample(Watts(w));
        }
    }

    #[test]
    fn initial_cap_is_min_of_max_and_limit() {
        let c = FppController::new(FppConfig::default(), Watts(253.5));
        assert_eq!(c.cap(), Watts(253.5));
        let c = FppController::new(FppConfig::default(), Watts(400.0));
        assert_eq!(c.cap(), Watts(300.0), "clamped to vendor max");
        let c = FppController::new(FppConfig::default(), Watts(80.0));
        assert_eq!(c.cap(), Watts(100.0), "clamped to vendor min");
    }

    #[test]
    fn first_epoch_probes_downward() {
        let mut c = FppController::new(FppConfig::default(), Watts(253.5));
        feed_square(&mut c, 10.0, 140.0, 55.0, 90);
        let d = c.on_epoch();
        assert_eq!(d, FppDecision::Set(Watts(203.5)));
        assert!(!c.converged());
    }

    #[test]
    fn periodic_unaffected_app_converges_at_reduced_cap() {
        // Quicksilver-like: the probe does not bind (demand < cap), the
        // period is unchanged, FPP converges early (paper §IV-D).
        let mut c = FppController::new(FppConfig::default(), Watts(253.5));
        feed_square(&mut c, 10.0, 140.0, 55.0, 90);
        c.on_epoch(); // probe to 203.5
        feed_square(&mut c, 10.0, 140.0, 55.0, 90); // unchanged signal
        let d = c.on_epoch();
        assert_eq!(d, FppDecision::Keep(Watts(203.5)));
        assert!(c.converged());
    }

    #[test]
    fn flat_app_with_binding_cap_gets_power_back() {
        // GEMM-like: no period; after the probe the GPU sits at the cap —
        // give the power back and converge (paper: "instantly gives
        // back").
        let mut c = FppController::new(FppConfig::default(), Watts(253.5));
        feed_flat(&mut c, 253.5, 90); // clipped at the initial cap
        let d = c.on_epoch();
        assert_eq!(d, FppDecision::Set(Watts(203.5)), "probe");
        feed_flat(&mut c, 203.5, 90); // clipped at the probe cap
        let d = c.on_epoch();
        assert_eq!(d, FppDecision::Set(Watts(253.5)), "restored");
        assert!(c.converged());
    }

    #[test]
    fn flat_app_with_slack_cap_keeps_probe_savings() {
        // NQueens-like: GPUs idle far below any cap.
        let mut c = FppController::new(FppConfig::default(), Watts(300.0));
        feed_flat(&mut c, 50.0, 90);
        c.on_epoch(); // probe to 250
        feed_flat(&mut c, 50.0, 90);
        let d = c.on_epoch();
        assert_eq!(d, FppDecision::Keep(Watts(250.0)));
        assert!(c.converged());
    }

    #[test]
    fn period_stretch_triggers_give_back() {
        // App whose period visibly stretches when capped (strongly
        // affected): Δ = +8 s ≥ change_th.
        let mut c = FppController::new(FppConfig::default(), Watts(300.0));
        feed_square(&mut c, 10.0, 290.0, 100.0, 90);
        c.on_epoch(); // probe to 250
        feed_square(&mut c, 18.0, 250.0, 100.0, 90); // period nearly doubled
        let d = c.on_epoch();
        assert_eq!(d, FppDecision::Set(Watts(300.0)));
        assert!(c.converged());
    }

    #[test]
    fn mild_negative_delta_reduces_further() {
        // Period got slightly *shorter* (Δ in (-5, -2)): the pseudocode
        // reduces power again (line 25-26).
        let mut c = FppController::new(FppConfig::default(), Watts(300.0));
        feed_square(&mut c, 14.0, 200.0, 80.0, 90);
        c.on_epoch(); // probe to 250
        feed_square(&mut c, 11.0, 200.0, 80.0, 90); // Δ = -3
        let d = c.on_epoch();
        assert_eq!(d, FppDecision::Set(Watts(200.0)));
        assert!(!c.converged());
    }

    #[test]
    fn converged_controller_holds() {
        let mut c = FppController::new(FppConfig::default(), Watts(253.5));
        feed_square(&mut c, 10.0, 140.0, 55.0, 90);
        c.on_epoch();
        feed_square(&mut c, 10.0, 140.0, 55.0, 90);
        c.on_epoch();
        assert!(c.converged());
        let cap = c.cap();
        for _ in 0..5 {
            feed_square(&mut c, 10.0, 140.0, 55.0, 90);
            assert_eq!(c.on_epoch(), FppDecision::Keep(cap));
        }
    }

    #[test]
    fn probe_respects_floor() {
        let mut c = FppController::new(FppConfig::default(), Watts(100.0));
        assert_eq!(c.cap(), Watts(100.0));
        feed_flat(&mut c, 100.0, 90);
        let d = c.on_epoch();
        assert_eq!(
            d,
            FppDecision::Keep(Watts(100.0)),
            "no probe below the floor"
        );
        assert!(c.converged());
    }

    #[test]
    fn rebase_follows_limit_increase_when_converged_at_limit() {
        // GEMM on a prop-share node: converge back at 253.5 (limit-bound),
        // then Quicksilver finishes and the node limit rises.
        let mut c = FppController::new(FppConfig::default(), Watts(253.5));
        feed_flat(&mut c, 253.5, 90);
        c.on_epoch();
        feed_flat(&mut c, 203.5, 90);
        c.on_epoch();
        assert_eq!(c.cap(), Watts(253.5));
        c.rebase(Watts(300.0));
        assert_eq!(c.cap(), Watts(300.0), "follows the raised limit");
    }

    #[test]
    fn rebase_keeps_probe_savings_when_converged_below_limit() {
        let mut c = FppController::new(FppConfig::default(), Watts(300.0));
        feed_flat(&mut c, 50.0, 90);
        c.on_epoch(); // probe 250
        feed_flat(&mut c, 50.0, 90);
        c.on_epoch(); // converge at 250
        c.rebase(Watts(280.0));
        assert_eq!(c.cap(), Watts(250.0), "savings kept under the new limit");
    }

    #[test]
    fn rebase_tightens_inflight_cap() {
        let mut c = FppController::new(FppConfig::default(), Watts(300.0));
        assert_eq!(c.cap(), Watts(300.0));
        c.rebase(Watts(200.0));
        assert_eq!(c.cap(), Watts(200.0));
    }

    #[test]
    fn welch_mode_converges_on_noisy_periodic_signal() {
        let cfg = FppConfig {
            use_welch: true,
            ..FppConfig::default()
        };
        let mut c = FppController::new(cfg, Watts(253.5));
        let mut state = 0xD00Du64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for _ in 0..2 {
            for t in 0..180 {
                // Noisy Quicksilver-like square wave.
                let base = if (t as f64 / 10.0).fract() < 0.3 {
                    140.0
                } else {
                    55.0
                };
                c.store_power_sample(Watts(base + 10.0 * next()));
            }
            c.on_epoch();
        }
        assert!(c.converged(), "noisy periodic signal converges under Welch");
        assert_eq!(c.cap(), Watts(203.5), "probe kept (cap not binding)");
    }

    #[test]
    fn staged_give_back_climbs_one_level_per_epoch() {
        // Same GEMM-like scenario as the instant-restore test, but with
        // the staged path enabled: the binding fallback fires with
        // delta = change_th (5 s) -> level 1 -> 15 W steps from 203.5
        // back up to 253.5, converging on arrival.
        let cfg = FppConfig {
            staged_give_back: true,
            ..FppConfig::default()
        };
        let mut c = FppController::new(cfg, Watts(253.5));
        feed_flat(&mut c, 253.5, 90);
        assert_eq!(c.on_epoch(), FppDecision::Set(Watts(203.5)), "probe");
        feed_flat(&mut c, 203.5, 90);
        assert_eq!(c.on_epoch(), FppDecision::Set(Watts(218.5)), "step 1");
        assert!(!c.converged(), "still restoring");
        for expect in [233.5, 248.5] {
            feed_flat(&mut c, expect - 15.0, 90);
            assert_eq!(c.on_epoch(), FppDecision::Set(Watts(expect)));
            assert!(!c.converged());
        }
        feed_flat(&mut c, 248.5, 90);
        // Final step clamps at the pre-probe target.
        assert_eq!(c.on_epoch(), FppDecision::Set(Watts(253.5)));
        assert!(c.converged(), "converged on arrival");
        // Converged: further epochs hold.
        feed_flat(&mut c, 253.5, 90);
        assert_eq!(c.on_epoch(), FppDecision::Keep(Watts(253.5)));
    }

    #[test]
    fn staged_give_back_jumps_when_one_step_covers_the_gap() {
        // With a probe smaller than the selected restore level, a single
        // step already reaches the target: jump and converge immediately
        // even in staged mode.
        let cfg = FppConfig {
            staged_give_back: true,
            p_reduce: Watts(20.0),
            ..FppConfig::default()
        };
        let mut c = FppController::new(cfg, Watts(300.0));
        feed_square(&mut c, 10.0, 290.0, 100.0, 90);
        assert_eq!(c.on_epoch(), FppDecision::Set(Watts(280.0)), "probe");
        // Period more than doubles (both periods sit on exact FFT bins
        // of a 90-sample epoch): delta = 12.5 s -> level 2 -> 25 W step,
        // 280 + 25 >= 300.
        feed_square(&mut c, 22.5, 280.0, 100.0, 90);
        assert_eq!(c.on_epoch(), FppDecision::Set(Watts(300.0)));
        assert!(c.converged());
    }

    #[test]
    fn default_give_back_is_instant() {
        // The default config restores the full pre-probe cap in a single
        // epoch (the paper's observed behavior).
        let c = FppConfig::default();
        assert!(!c.staged_give_back);
        let mut c = FppController::new(FppConfig::default(), Watts(253.5));
        feed_flat(&mut c, 253.5, 90);
        c.on_epoch();
        feed_flat(&mut c, 203.5, 90);
        assert_eq!(c.on_epoch(), FppDecision::Set(Watts(253.5)), "one jump");
        assert!(c.converged());
    }

    #[test]
    fn buffer_resets_each_epoch() {
        let mut c = FppController::new(FppConfig::default(), Watts(300.0));
        feed_flat(&mut c, 100.0, 90);
        assert_eq!(c.buffered(), 90);
        c.on_epoch();
        assert_eq!(c.buffered(), 0);
    }
}
