//! The proportional sharing policy (paper §III-B1), as pure logic.
//!
//! For a cluster with global bound `P_G` and `k` running jobs occupying
//! `N_k` nodes in total, every node receives the same allocation
//!
//! ```text
//! P_n = min(P_peak, P_G / N_k)
//! ```
//!
//! and job `i` with `N_i` nodes receives `P_i = N_i * P_n`. Admitting a
//! job first tries to give every node its maximum (`P_avail` permitting);
//! otherwise all jobs are proportionally re-allocated — which is exactly
//! the uniform formula above. Finishing jobs return their power, and the
//! survivors are topped back up ("reclaiming", §IV-D).

use fluxpm_flux::JobId;
use fluxpm_hw::Watts;
use std::collections::BTreeMap;

/// Pure allocator state: which jobs hold how many nodes.
///
/// ```
/// use fluxpm_manager::ProportionalAllocator;
/// use fluxpm_flux::JobId;
/// use fluxpm_hw::Watts;
///
/// // The paper's scenario: 9.6 kW over 8 Lassen nodes (3050 W peak).
/// let mut alloc = ProportionalAllocator::new(Watts(9600.0), Watts(3050.0));
/// alloc.admit(JobId(0), 6); // GEMM
/// let per_node = alloc.admit(JobId(1), 2); // Quicksilver
/// assert_eq!(per_node, Watts(1200.0));
///
/// // Reclaim on completion: GEMM's share rises (paper Fig. 5).
/// assert_eq!(alloc.release(JobId(1)), Watts(1600.0));
/// ```
#[derive(Debug, Clone)]
pub struct ProportionalAllocator {
    /// Global power bound `P_G`.
    global: Watts,
    /// Per-node nameplate maximum (3050 W on Lassen).
    node_peak: Watts,
    /// Running jobs → node counts (BTreeMap for deterministic order).
    jobs: BTreeMap<JobId, u32>,
}

impl ProportionalAllocator {
    /// A fresh allocator.
    pub fn new(global: Watts, node_peak: Watts) -> ProportionalAllocator {
        assert!(global.get() > 0.0 && node_peak.get() > 0.0);
        ProportionalAllocator {
            global,
            node_peak,
            jobs: BTreeMap::new(),
        }
    }

    /// Rebuild an allocator from snapshot parts: the bound, the node
    /// peak, and the admitted `(job, nnodes)` set. Inverse of
    /// [`ProportionalAllocator::admitted_jobs`], used by event-log
    /// replay after full instance death.
    pub fn from_parts(
        global: Watts,
        node_peak: Watts,
        jobs: impl IntoIterator<Item = (JobId, u32)>,
    ) -> ProportionalAllocator {
        let mut a = ProportionalAllocator::new(global, node_peak);
        a.jobs = jobs.into_iter().collect();
        a
    }

    /// The global bound.
    pub fn global_bound(&self) -> Watts {
        self.global
    }

    /// The per-node nameplate maximum this allocator clamps to.
    pub fn node_peak(&self) -> Watts {
        self.node_peak
    }

    /// The admitted jobs and their node counts, in job-id order.
    pub fn admitted_jobs(&self) -> impl Iterator<Item = (JobId, u32)> + '_ {
        self.jobs.iter().map(|(&id, &n)| (id, n))
    }

    /// Total nodes currently allocated.
    pub fn nodes_in_use(&self) -> u32 {
        self.jobs.values().sum()
    }

    /// Admit a job. Returns the new per-node allocation (uniform across
    /// all jobs after this admission).
    pub fn admit(&mut self, job: JobId, nnodes: u32) -> Watts {
        assert!(nnodes > 0);
        let prev = self.jobs.insert(job, nnodes);
        debug_assert!(prev.is_none(), "job admitted twice");
        self.per_node_limit()
    }

    /// Remove a finished job. Returns the new per-node allocation for the
    /// survivors (they are topped back up toward the peak).
    pub fn release(&mut self, job: JobId) -> Watts {
        self.jobs.remove(&job);
        self.per_node_limit()
    }

    /// The current uniform per-node limit.
    pub fn per_node_limit(&self) -> Watts {
        let n = self.nodes_in_use();
        if n == 0 {
            return self.node_peak;
        }
        (self.global / n as f64).min(self.node_peak)
    }

    /// The power limit for one job under the current allocation.
    pub fn job_limit(&self, job: JobId) -> Option<Watts> {
        let n = *self.jobs.get(&job)?;
        Some(self.per_node_limit() * n as f64)
    }

    /// All current job limits, in job-id order.
    pub fn all_job_limits(&self) -> Vec<(JobId, Watts)> {
        let per_node = self.per_node_limit();
        self.jobs
            .iter()
            .map(|(&id, &n)| (id, per_node * n as f64))
            .collect()
    }

    /// Invariant: the sum of job limits never exceeds the global bound.
    pub fn total_allocated(&self) -> Watts {
        self.all_job_limits().iter().map(|(_, w)| *w).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc() -> ProportionalAllocator {
        // The paper's power-constrained scenario: 9.6 kW over 8 nodes,
        // Lassen 3050 W nameplate.
        ProportionalAllocator::new(Watts(9600.0), Watts(3050.0))
    }

    #[test]
    fn single_small_job_gets_peak() {
        let mut a = alloc();
        let p = a.admit(JobId(0), 3);
        // 9600 / 3 = 3200 > 3050 peak -> clamp to peak.
        assert_eq!(p, Watts(3050.0));
        assert_eq!(a.job_limit(JobId(0)), Some(Watts(9150.0)));
    }

    #[test]
    fn paper_scenario_full_cluster() {
        // GEMM on 6 nodes + Quicksilver on 2: every node gets 1200 W.
        let mut a = alloc();
        a.admit(JobId(0), 6);
        let p = a.admit(JobId(1), 2);
        assert_eq!(p, Watts(1200.0));
        assert_eq!(a.job_limit(JobId(0)), Some(Watts(7200.0)));
        assert_eq!(a.job_limit(JobId(1)), Some(Watts(2400.0)));
        assert!(a.total_allocated().get() <= 9600.0 + 1e-9);
    }

    #[test]
    fn reclaim_on_release() {
        // Paper Fig. 5: GEMM receives additional power when Quicksilver
        // finishes.
        let mut a = alloc();
        a.admit(JobId(0), 6);
        a.admit(JobId(1), 2);
        assert_eq!(a.per_node_limit(), Watts(1200.0));
        let p = a.release(JobId(1));
        assert_eq!(p, Watts(1600.0), "9600 / 6 nodes");
        assert_eq!(a.job_limit(JobId(0)), Some(Watts(9600.0)));
        assert_eq!(a.job_limit(JobId(1)), None);
    }

    #[test]
    fn empty_cluster_offers_peak() {
        let a = alloc();
        assert_eq!(a.per_node_limit(), Watts(3050.0));
        assert_eq!(a.nodes_in_use(), 0);
        assert_eq!(a.total_allocated(), Watts(0.0));
    }

    #[test]
    fn allocation_is_uniform_across_jobs() {
        let mut a = alloc();
        a.admit(JobId(0), 1);
        a.admit(JobId(1), 4);
        a.admit(JobId(2), 3);
        let per = a.per_node_limit();
        for (id, limit) in a.all_job_limits() {
            let n = match id {
                JobId(0) => 1.0,
                JobId(1) => 4.0,
                _ => 3.0,
            };
            assert!(limit.approx_eq(per * n, 1e-9));
        }
    }

    #[test]
    fn bound_never_violated_under_churn() {
        let mut a = alloc();
        let mut live: Vec<JobId> = Vec::new();
        for i in 0..100u64 {
            if i % 3 == 2 && !live.is_empty() {
                let gone = live.remove((i as usize) % live.len());
                a.release(gone);
            } else {
                let id = JobId(i);
                a.admit(id, (i % 4 + 1) as u32);
                live.push(id);
            }
            assert!(
                a.total_allocated().get() <= a.global_bound().get() + 1e-6,
                "bound violated at step {i}: {} allocated",
                a.total_allocated()
            );
            let per = a.per_node_limit();
            assert!(per.get() <= 3050.0 + 1e-9 && per.get() > 0.0);
        }
    }
}
