//! # fluxpm-manager — the `flux-power-manager` module
//!
//! Reproduction of the paper's hierarchical, state-aware power management
//! system (§III-B). Three components connected by RPCs over the TBON:
//!
//! * [`ClusterLevelManager`] (rank 0) — owns the global power bound
//!   `P_G`; on every job start/finish it recomputes the per-job power
//!   limits under the **proportional sharing policy** (§III-B1) and
//!   pushes them down,
//! * [`JobLevelManager`] (rank 0) — splits a job's limit equally across
//!   its nodes and RPCs each node's manager,
//! * [`NodeLevelManager`] (every rank) — enforces node-level limits by
//!   deriving and setting per-GPU caps through Variorum/NVML, tracks node
//!   power on its own timer, and optionally runs the **FFT-based dynamic
//!   policy (FPP)** of Algorithm 1 per GPU.
//!
//! The pure decision logic — the proportional allocator and the FPP
//! controller — lives in [`allocator`] and [`fpp`], fully unit-testable
//! without a simulation.

#![warn(missing_docs)]
pub mod allocator;
pub mod cluster;
pub mod fpp;
pub mod job_mgr;
pub mod node_mgr;
pub mod proto;

pub use allocator::ProportionalAllocator;
pub use cluster::ClusterLevelManager;
pub use fpp::{FppConfig, FppController, FppDecision};
pub use job_mgr::JobLevelManager;
pub use node_mgr::NodeLevelManager;
pub use proto::{FppTarget, JobLimitMsg, ManagerReply, ManagerRequest, NodeLimitMsg, PolicyKind};

use fluxpm_flux::{FluxEngine, World};
use fluxpm_hw::Watts;

/// Manager deployment configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ManagerConfig {
    /// The cluster-level power bound `P_G`. `None` = unconstrained (each
    /// node may run at its nameplate power; no capping is performed).
    pub global_bound: Option<Watts>,
    /// Which dynamic policy the node managers run.
    pub policy: PolicyKind,
    /// FPP tuning (used when `policy == PolicyKind::Fpp`).
    pub fpp: FppConfig,
    /// Which device class FPP controls.
    pub fpp_target: FppTarget,
}

impl ManagerConfig {
    /// Proportional sharing under a global bound.
    pub fn proportional(global_bound: Watts) -> ManagerConfig {
        ManagerConfig {
            global_bound: Some(global_bound),
            policy: PolicyKind::Proportional,
            fpp: FppConfig::default(),
            fpp_target: FppTarget::Gpu,
        }
    }

    /// FPP (proportional sharing plus per-GPU dynamic capping).
    pub fn fpp(global_bound: Watts) -> ManagerConfig {
        ManagerConfig {
            global_bound: Some(global_bound),
            policy: PolicyKind::Fpp,
            fpp: FppConfig::default(),
            fpp_target: FppTarget::Gpu,
        }
    }

    /// FPP driving per-socket CPU caps instead of GPUs — the paper's
    /// "easily extended to socket-level capping" variant, useful for
    /// CPU-bound workloads like Charm++ NQueens.
    pub fn fpp_sockets(global_bound: Watts) -> ManagerConfig {
        ManagerConfig {
            global_bound: Some(global_bound),
            policy: PolicyKind::Fpp,
            fpp: FppConfig::default(),
            fpp_target: FppTarget::Socket,
        }
    }

    /// FPP driving the memory-subsystem (DRAM RAPL) cap — the paper's
    /// "memory-level power capping" extension.
    pub fn fpp_memory(global_bound: Watts) -> ManagerConfig {
        ManagerConfig {
            global_bound: Some(global_bound),
            policy: PolicyKind::Fpp,
            fpp: FppConfig::default(),
            fpp_target: FppTarget::Memory,
        }
    }

    /// No cluster constraint: peak power to every node.
    pub fn unconstrained() -> ManagerConfig {
        ManagerConfig {
            global_bound: None,
            policy: PolicyKind::Unconstrained,
            fpp: FppConfig::default(),
            fpp_target: FppTarget::Gpu,
        }
    }
}

/// Load the full manager stack: a [`NodeLevelManager`] on every rank, and
/// the [`JobLevelManager`] + [`ClusterLevelManager`] on the current root.
///
/// Also registers a node-manager *module factory*: when a failed node
/// rejoins via [`World::recover_node`], the world rebuilds its
/// node-level manager from this factory (it restarts unconstrained and
/// reconverges on the next limit push). The job- and cluster-level
/// managers are root services — on root failure they migrate with their
/// state (allocator budgets, mirrored limits) to the elected successor,
/// and both log their transitions to the instance
/// [state log](fluxpm_flux::StateLog): if the *whole* instance dies, the
/// first recovered rank rebuilds them from the registered root-service
/// factories and replays the log back to the exact pre-crash state.
pub fn load(world: &mut World, eng: &mut FluxEngine, config: ManagerConfig) -> bool {
    let mut ok = true;
    for rank in world.tbon.ranks().collect::<Vec<_>>() {
        let m = NodeLevelManager::shared_with_target(
            config.policy,
            config.fpp.clone(),
            config.fpp_target,
        );
        ok &= world.load_module(eng, rank, m);
    }
    let root = world.root();
    ok &= world.load_module(eng, root, JobLevelManager::shared());
    ok &= world.load_module(eng, root, ClusterLevelManager::shared(config.clone()));
    {
        let config = config.clone();
        world.register_module_factory(move |_rank| {
            NodeLevelManager::shared_with_target(
                config.policy,
                config.fpp.clone(),
                config.fpp_target,
            )
        });
    }
    world.register_root_service_factory(|| {
        let m: fluxpm_flux::SharedModule = JobLevelManager::shared();
        m
    });
    world.register_root_service_factory(move || {
        let m: fluxpm_flux::SharedModule = ClusterLevelManager::shared(config.clone());
        m
    });
    ok
}
