//! The cluster-level manager (paper §III-B).
//!
//! Runs on the root node. State-aware: it subscribes to job lifecycle
//! events, maintains the proportional allocator over the global power
//! bound, and pushes updated *job-level power limits* to the job-level
//! manager whenever the allocation changes (admission or reclaim).

use crate::allocator::ProportionalAllocator;
use crate::proto::{JobLimitMsg, ManagerRequest, PolicyKind, TOPIC_JOB_LIMIT};
use crate::ManagerConfig;
use fluxpm_flux::world::{EVENT_JOB_EXCEPTION, EVENT_JOB_FINISH, EVENT_JOB_START};
use fluxpm_flux::{JobId, Message, Module, ModuleCtx, MsgKind, Protocol, RetryPolicy, Topic};
use fluxpm_sim::TraceLevel;
use std::cell::RefCell;
use std::rc::Rc;

/// The `flux-power-manager` cluster-level component.
pub struct ClusterLevelManager {
    config: ManagerConfig,
    allocator: Option<ProportionalAllocator>,
    /// Limit updates pushed (diagnostics).
    updates_sent: u64,
}

impl ClusterLevelManager {
    /// Create an unloaded manager.
    pub fn new(config: ManagerConfig) -> ClusterLevelManager {
        ClusterLevelManager {
            config,
            allocator: None,
            updates_sent: 0,
        }
    }

    /// Create as a shared module handle.
    pub fn shared(config: ManagerConfig) -> Rc<RefCell<ClusterLevelManager>> {
        Rc::new(RefCell::new(ClusterLevelManager::new(config)))
    }

    /// Limit updates pushed so far.
    pub fn updates_sent(&self) -> u64 {
        self.updates_sent
    }

    /// The current per-node allocation, if constrained.
    pub fn per_node_limit(&self) -> Option<fluxpm_hw::Watts> {
        self.allocator.as_ref().map(|a| a.per_node_limit())
    }

    /// The current per-job limits (empty when unconstrained). Survives a
    /// root failover — the allocator migrates with the module.
    pub fn job_limits(&self) -> Vec<(JobId, fluxpm_hw::Watts)> {
        self.allocator
            .as_ref()
            .map(|a| a.all_job_limits())
            .unwrap_or_default()
    }

    fn ensure_allocator(&mut self, ctx: &ModuleCtx<'_>) {
        if self.allocator.is_none() {
            if let Some(bound) = self.config.global_bound {
                let peak = ctx.world.nodes[0].arch.capping.max_node_cap;
                let peak = if peak.get() > 0.0 {
                    peak
                } else {
                    ctx.world.nodes[0].arch.peak_node_power()
                };
                self.allocator = Some(ProportionalAllocator::new(bound, peak));
            }
        }
    }

    /// Push the current limit of every allocated job to the job-level
    /// manager.
    fn push_all_limits(&mut self, ctx: &mut ModuleCtx<'_>) {
        let Some(alloc) = &self.allocator else { return };
        let limits = alloc.all_job_limits();
        // The job-level manager is co-resident on this manager's rank
        // (rank 0 initially; the failover successor after a migration).
        let here = ctx.rank;
        for (job, limit) in limits {
            // Acked + retried so a lost push cannot leave the job-level
            // manager holding a stale allocation.
            let req = ManagerRequest::JobLimit(JobLimitMsg { job, limit });
            ctx.world
                .rpc(here, TOPIC_JOB_LIMIT, req.encode())
                .from(here)
                .retry(RetryPolicy::default())
                .send(ctx.eng, move |world, eng, resp| {
                    if resp.is_timeout() {
                        world.trace.emit(
                            eng.now(),
                            TraceLevel::Warn,
                            "manager",
                            format!("job-limit push for {job:?} gave up: {:?}", resp.error),
                        );
                    }
                });
            self.updates_sent += 1;
        }
    }

    fn on_job_start(&mut self, ctx: &mut ModuleCtx<'_>, job: JobId) {
        if self.config.policy == PolicyKind::Unconstrained {
            return; // nothing to cap; nodes run at nameplate
        }
        self.ensure_allocator(ctx);
        let Some(nnodes) = ctx.world.jobs.get(job).map(|j| j.spec.nnodes) else {
            return;
        };
        if let Some(alloc) = &mut self.allocator {
            let per_node = alloc.admit(job, nnodes);
            ctx.world.trace.emit(
                ctx.eng.now(),
                TraceLevel::Info,
                "manager",
                format!("admit {job:?} ({nnodes} nodes) -> {per_node}/node"),
            );
        }
        self.push_all_limits(ctx);
    }

    fn on_job_finish(&mut self, ctx: &mut ModuleCtx<'_>, job: JobId) {
        if let Some(alloc) = &mut self.allocator {
            let per_node = alloc.release(job);
            ctx.world.trace.emit(
                ctx.eng.now(),
                TraceLevel::Info,
                "manager",
                format!("reclaim {job:?} -> {per_node}/node"),
            );
            self.push_all_limits(ctx);
        }
    }
}

impl Module for ClusterLevelManager {
    fn name(&self) -> &'static str {
        "power-manager-cluster"
    }

    fn topics(&self) -> Vec<Topic> {
        vec![
            EVENT_JOB_START.into(),
            EVENT_JOB_FINISH.into(),
            EVENT_JOB_EXCEPTION.into(),
        ]
    }

    fn load(&mut self, _ctx: &mut ModuleCtx<'_>) {}

    fn handle(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Message) {
        if msg.kind != MsgKind::Event {
            return;
        }
        let Some(&job) = msg.payload_as::<JobId>() else {
            return;
        };
        match msg.topic.as_str() {
            t if t == EVENT_JOB_START => self.on_job_start(ctx, job),
            t if t == EVENT_JOB_FINISH || t == EVENT_JOB_EXCEPTION => self.on_job_finish(ctx, job),
            _ => {}
        }
    }

    fn root_service(&self) -> bool {
        true
    }

    fn on_migrate(&mut self, ctx: &mut ModuleCtx<'_>) {
        // The budgets (allocator state) migrated with this module; any
        // limit push in flight when the old root died did not. Re-push
        // every allocation under the new topology epoch so the job- and
        // node-level managers reconverge.
        ctx.world.trace.emit(
            ctx.eng.now(),
            TraceLevel::Info,
            "manager",
            format!(
                "cluster manager migrated to {}; re-pushing {} job limit(s)",
                ctx.rank,
                self.job_limits().len()
            ),
        );
        self.push_all_limits(ctx);
    }
}
