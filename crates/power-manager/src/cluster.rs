//! The cluster-level manager (paper §III-B).
//!
//! Runs on the root node. State-aware: it subscribes to job lifecycle
//! events, maintains the proportional allocator over the global power
//! bound, and pushes updated *job-level power limits* to the job-level
//! manager whenever the allocation changes (admission or reclaim).

use crate::allocator::ProportionalAllocator;
use crate::proto::{JobLimitMsg, ManagerRequest, PolicyKind, TOPIC_JOB_LIMIT};
use crate::ManagerConfig;
use fluxpm_flux::world::{EVENT_JOB_EXCEPTION, EVENT_JOB_FINISH, EVENT_JOB_START};
use fluxpm_flux::{
    JobId, Message, Module, ModuleCtx, MsgKind, Protocol, RetryPolicy, StateEvent, StateValue,
    Topic,
};
use fluxpm_hw::Watts;
use fluxpm_sim::TraceLevel;
use std::cell::RefCell;
use std::rc::Rc;

/// Module name, also the key under which state events are logged.
pub const CLUSTER_MANAGER: &str = "power-manager-cluster";

/// The `flux-power-manager` cluster-level component.
pub struct ClusterLevelManager {
    config: ManagerConfig,
    allocator: Option<ProportionalAllocator>,
    /// Limit updates pushed (diagnostics).
    updates_sent: u64,
}

impl ClusterLevelManager {
    /// Create an unloaded manager.
    pub fn new(config: ManagerConfig) -> ClusterLevelManager {
        ClusterLevelManager {
            config,
            allocator: None,
            updates_sent: 0,
        }
    }

    /// Create as a shared module handle.
    pub fn shared(config: ManagerConfig) -> Rc<RefCell<ClusterLevelManager>> {
        Rc::new(RefCell::new(ClusterLevelManager::new(config)))
    }

    /// Limit updates pushed so far.
    pub fn updates_sent(&self) -> u64 {
        self.updates_sent
    }

    /// The current per-node allocation, if constrained.
    pub fn per_node_limit(&self) -> Option<fluxpm_hw::Watts> {
        self.allocator.as_ref().map(|a| a.per_node_limit())
    }

    /// The current per-job limits (empty when unconstrained). Survives a
    /// root failover — the allocator migrates with the module.
    pub fn job_limits(&self) -> Vec<(JobId, fluxpm_hw::Watts)> {
        self.allocator
            .as_ref()
            .map(|a| a.all_job_limits())
            .unwrap_or_default()
    }

    fn ensure_allocator(&mut self, ctx: &ModuleCtx<'_>) {
        if self.allocator.is_none() {
            if let Some(bound) = self.config.global_bound {
                let peak = ctx.world.nodes[0].arch.capping.max_node_cap;
                let peak = if peak.get() > 0.0 {
                    peak
                } else {
                    ctx.world.nodes[0].arch.peak_node_power()
                };
                self.allocator = Some(ProportionalAllocator::new(bound, peak));
            }
        }
    }

    /// Push the current limit of every allocated job to the job-level
    /// manager.
    fn push_all_limits(&mut self, ctx: &mut ModuleCtx<'_>) {
        let Some(alloc) = &self.allocator else { return };
        let limits = alloc.all_job_limits();
        // The job-level manager is co-resident on this manager's rank
        // (rank 0 initially; the failover successor after a migration).
        let here = ctx.rank;
        for (job, limit) in limits {
            // Canonical record for sharded byte-equality checks (no-op
            // on classic worlds): the cluster-level allocation decision.
            ctx.world.record(
                ctx.eng.now(),
                here.0,
                fluxpm_flux::shard::rec::JOB_LIMIT,
                job.0,
                (limit.get() * 1000.0).round() as u64,
            );
            // Acked + retried so a lost push cannot leave the job-level
            // manager holding a stale allocation.
            let req = ManagerRequest::JobLimit(JobLimitMsg { job, limit });
            ctx.world
                .rpc(here, TOPIC_JOB_LIMIT, req.encode())
                .from(here)
                .retry(RetryPolicy::default())
                .send(ctx.eng, move |world, eng, resp| {
                    if resp.is_timeout() {
                        world.trace.emit(
                            eng.now(),
                            TraceLevel::Warn,
                            "manager",
                            format!("job-limit push for {job:?} gave up: {:?}", resp.error),
                        );
                    }
                });
            self.updates_sent += 1;
        }
    }

    fn on_job_start(&mut self, ctx: &mut ModuleCtx<'_>, job: JobId) {
        if self.config.policy == PolicyKind::Unconstrained {
            return; // nothing to cap; nodes run at nameplate
        }
        self.ensure_allocator(ctx);
        let Some(nnodes) = ctx.world.jobs.get(job).map(|j| j.spec.nnodes) else {
            return;
        };
        if let Some(alloc) = &mut self.allocator {
            let per_node = alloc.admit(job, nnodes);
            // Log the admission as a self-contained event: it carries
            // the bound and peak so replay after full instance death can
            // rebuild the allocator without re-deriving hardware facts.
            let ev = StateValue::record([
                ("job", StateValue::U64(job.0)),
                ("nnodes", StateValue::U64(nnodes as u64)),
                ("bound", StateValue::F64(alloc.global_bound().get())),
                ("peak", StateValue::F64(alloc.node_peak().get())),
            ]);
            ctx.world
                .state
                .append(ctx.eng.now().as_micros(), CLUSTER_MANAGER, "admit", ev);
            ctx.world.trace.emit(
                ctx.eng.now(),
                TraceLevel::Info,
                "manager",
                format!("admit {job:?} ({nnodes} nodes) -> {per_node}/node"),
            );
        }
        self.push_all_limits(ctx);
    }

    fn on_job_finish(&mut self, ctx: &mut ModuleCtx<'_>, job: JobId) {
        if let Some(alloc) = &mut self.allocator {
            let per_node = alloc.release(job);
            ctx.world.state.append(
                ctx.eng.now().as_micros(),
                CLUSTER_MANAGER,
                "release",
                StateValue::record([("job", StateValue::U64(job.0))]),
            );
            ctx.world.trace.emit(
                ctx.eng.now(),
                TraceLevel::Info,
                "manager",
                format!("reclaim {job:?} -> {per_node}/node"),
            );
            self.push_all_limits(ctx);
        }
    }

    /// Rebuild an allocator from an event's embedded bound/peak.
    fn allocator_from_event(data: &StateValue) -> Option<ProportionalAllocator> {
        let bound = data.f64_field("bound")?;
        let peak = data.f64_field("peak")?;
        Some(ProportionalAllocator::new(Watts(bound), Watts(peak)))
    }
}

impl Module for ClusterLevelManager {
    fn name(&self) -> &'static str {
        CLUSTER_MANAGER
    }

    fn topics(&self) -> Vec<Topic> {
        vec![
            EVENT_JOB_START.into(),
            EVENT_JOB_FINISH.into(),
            EVENT_JOB_EXCEPTION.into(),
        ]
    }

    fn load(&mut self, _ctx: &mut ModuleCtx<'_>) {}

    fn handle(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Message) {
        if msg.kind != MsgKind::Event {
            return;
        }
        let Some(&job) = msg.payload_as::<JobId>() else {
            return;
        };
        match msg.topic.as_str() {
            t if t == EVENT_JOB_START => self.on_job_start(ctx, job),
            t if t == EVENT_JOB_FINISH || t == EVENT_JOB_EXCEPTION => self.on_job_finish(ctx, job),
            _ => {}
        }
    }

    fn root_service(&self) -> bool {
        true
    }

    fn on_migrate(&mut self, ctx: &mut ModuleCtx<'_>) {
        // The budgets (allocator state) migrated with this module; any
        // limit push in flight when the old root died did not. Re-push
        // every allocation under the new topology epoch so the job- and
        // node-level managers reconverge.
        ctx.world.trace.emit(
            ctx.eng.now(),
            TraceLevel::Info,
            "manager",
            format!(
                "cluster manager migrated to {}; re-pushing {} job limit(s)",
                ctx.rank,
                self.job_limits().len()
            ),
        );
        self.push_all_limits(ctx);
    }

    /// The replayable state: the budgets. Diagnostics counters
    /// (`updates_sent`) are deliberately excluded — they count messages,
    /// not state, and re-pushes after recovery legitimately differ.
    fn snapshot(&self) -> Option<StateValue> {
        let alloc = self.allocator.as_ref()?;
        let jobs: Vec<StateValue> = alloc
            .admitted_jobs()
            .map(|(job, n)| {
                StateValue::record([
                    ("job", StateValue::U64(job.0)),
                    ("nnodes", StateValue::U64(n as u64)),
                ])
            })
            .collect();
        Some(StateValue::record([
            ("bound", StateValue::F64(alloc.global_bound().get())),
            ("peak", StateValue::F64(alloc.node_peak().get())),
            ("jobs", jobs.into()),
        ]))
    }

    fn restore(&mut self, snapshot: &StateValue) {
        let (Some(bound), Some(peak)) = (snapshot.f64_field("bound"), snapshot.f64_field("peak"))
        else {
            return;
        };
        let jobs = snapshot
            .get("jobs")
            .and_then(|j| j.as_list())
            .unwrap_or_default()
            .iter()
            .filter_map(|j| Some((JobId(j.u64_field("job")?), j.u64_field("nnodes")? as u32)));
        self.allocator = Some(ProportionalAllocator::from_parts(
            Watts(bound),
            Watts(peak),
            jobs,
        ));
    }

    fn apply_event(&mut self, event: &StateEvent) {
        match event.kind {
            "admit" => {
                if self.allocator.is_none() {
                    self.allocator = Self::allocator_from_event(&event.data);
                }
                let (Some(job), Some(n)) =
                    (event.data.u64_field("job"), event.data.u64_field("nnodes"))
                else {
                    return;
                };
                if let Some(alloc) = &mut self.allocator {
                    alloc.admit(JobId(job), n as u32);
                }
            }
            "release" => {
                if let (Some(alloc), Some(job)) =
                    (self.allocator.as_mut(), event.data.u64_field("job"))
                {
                    alloc.release(JobId(job));
                }
            }
            _ => {}
        }
    }
}
