//! The job-level manager (paper §III-B).
//!
//! Runs on the root node. Receives each job's power limit from the
//! cluster-level manager, splits it equally across the job's nodes, and
//! RPCs every node-level manager. It mirrors the complete state of the
//! jobs it manages.

use crate::proto::{
    JobLimitMsg, ManagerReply, ManagerRequest, NodeLimitMsg, TOPIC_JOB_LIMIT, TOPIC_SET_NODE_LIMIT,
};
use fluxpm_flux::{
    JobId, Message, Module, ModuleCtx, MsgKind, Protocol, RetryPolicy, StateEvent, StateValue,
    Topic,
};
use fluxpm_hw::Watts;
use fluxpm_sim::TraceLevel;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Module name, also the key under which state events are logged.
pub const JOB_MANAGER: &str = "power-manager-job";

/// The `flux-power-manager` job-level component.
#[derive(Default)]
pub struct JobLevelManager {
    /// Last limit applied per job (the mirrored state).
    limits: HashMap<JobId, Watts>,
    /// Node-limit RPCs sent (diagnostics).
    node_updates: u64,
}

impl JobLevelManager {
    /// Create an unloaded manager.
    pub fn new() -> JobLevelManager {
        JobLevelManager::default()
    }

    /// Create as a shared module handle.
    pub fn shared() -> Rc<RefCell<JobLevelManager>> {
        Rc::new(RefCell::new(JobLevelManager::new()))
    }

    /// The last limit recorded for a job.
    pub fn job_limit(&self, job: JobId) -> Option<Watts> {
        self.limits.get(&job).copied()
    }

    /// Node-limit updates sent so far.
    pub fn node_updates(&self) -> u64 {
        self.node_updates
    }

    fn apply(&mut self, ctx: &mut ModuleCtx<'_>, m: &JobLimitMsg) {
        let Some(job) = ctx.world.jobs.get(m.job) else {
            return;
        };
        let ranks = job.ranks();
        if ranks.is_empty() {
            return; // not running (raced with completion)
        }
        // Skip no-op updates: reallocation events re-push every job.
        if self.limits.get(&m.job) == Some(&m.limit) {
            return;
        }
        self.limits.insert(m.job, m.limit);
        ctx.world.state.append(
            ctx.eng.now().as_micros(),
            JOB_MANAGER,
            "limit",
            StateValue::record([
                ("job", StateValue::U64(m.job.0)),
                ("w", StateValue::F64(m.limit.get())),
            ]),
        );
        let per_node = m.limit / ranks.len() as f64;
        let here = ctx.rank;
        for rank in ranks {
            // Acked + retried: a node manager that misses the push (lost
            // message, transient partition) gets it again; a dead node
            // surfaces as a final timeout instead of silent divergence.
            let req = ManagerRequest::SetNodeLimit(NodeLimitMsg { limit: per_node });
            ctx.world
                .rpc(rank, TOPIC_SET_NODE_LIMIT, req.encode())
                .from(here)
                .retry(RetryPolicy::default())
                .send(ctx.eng, move |world, eng, resp| {
                    if resp.is_timeout() {
                        world.trace.emit(
                            eng.now(),
                            TraceLevel::Warn,
                            "job-mgr",
                            format!("node-limit push to {rank} gave up: {:?}", resp.error),
                        );
                    }
                });
            self.node_updates += 1;
        }
    }
}

impl Module for JobLevelManager {
    fn name(&self) -> &'static str {
        JOB_MANAGER
    }

    fn topics(&self) -> Vec<Topic> {
        vec![TOPIC_JOB_LIMIT.into()]
    }

    fn load(&mut self, _ctx: &mut ModuleCtx<'_>) {}

    fn handle(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Message) {
        if msg.kind == MsgKind::Request && msg.topic == TOPIC_JOB_LIMIT {
            if let Ok(ManagerRequest::JobLimit(m)) = ManagerRequest::decode(msg) {
                self.apply(ctx, &m);
            }
            // Ack so the cluster manager's retry loop can settle.
            ctx.world
                .respond(ctx.eng, msg, ManagerReply::JobLimitAck.encode());
        }
    }

    fn root_service(&self) -> bool {
        true
    }

    fn on_migrate(&mut self, ctx: &mut ModuleCtx<'_>) {
        // The cluster manager re-pushes every allocation after a
        // failover, but its values are usually unchanged — and the no-op
        // dedup above would swallow them, leaving node managers that
        // missed an in-flight push permanently stale. Forget the mirror
        // so the re-push fans out unconditionally. The clear is itself a
        // state transition, so it is logged.
        ctx.world.trace.emit(
            ctx.eng.now(),
            TraceLevel::Info,
            "job-mgr",
            format!(
                "job manager migrated to {}; clearing {} mirrored limit(s) for re-push",
                ctx.rank,
                self.limits.len()
            ),
        );
        self.limits.clear();
        ctx.world.state.append(
            ctx.eng.now().as_micros(),
            JOB_MANAGER,
            "clear",
            StateValue::Null,
        );
    }

    /// The replayable state: the per-job limit mirror, in job-id order.
    /// The `node_updates` counter is diagnostics, not state.
    fn snapshot(&self) -> Option<StateValue> {
        let mut limits: Vec<(JobId, Watts)> = self.limits.iter().map(|(&j, &w)| (j, w)).collect();
        limits.sort_by_key(|(j, _)| *j);
        Some(StateValue::record([(
            "limits",
            limits
                .into_iter()
                .map(|(j, w)| {
                    StateValue::record([
                        ("job", StateValue::U64(j.0)),
                        ("w", StateValue::F64(w.get())),
                    ])
                })
                .collect::<Vec<_>>()
                .into(),
        )]))
    }

    fn restore(&mut self, snapshot: &StateValue) {
        self.limits.clear();
        for entry in snapshot
            .get("limits")
            .and_then(|l| l.as_list())
            .unwrap_or_default()
        {
            if let (Some(job), Some(w)) = (entry.u64_field("job"), entry.f64_field("w")) {
                self.limits.insert(JobId(job), Watts(w));
            }
        }
    }

    fn apply_event(&mut self, event: &StateEvent) {
        match event.kind {
            "limit" => {
                if let (Some(job), Some(w)) =
                    (event.data.u64_field("job"), event.data.f64_field("w"))
                {
                    self.limits.insert(JobId(job), Watts(w));
                }
            }
            "clear" => self.limits.clear(),
            _ => {}
        }
    }
}
