//! Manager message payloads and policy identifiers.
//!
//! The limit-push traffic travels as the typed [`ManagerRequest`] /
//! [`ManagerReply`] enums (one [`Protocol`] variant per topic); the
//! plain structs are their per-variant payloads. Job lifecycle *events*
//! are published by the flux layer itself and stay raw `JobId` payloads.

use fluxpm_flux::{JobId, Protocol};
use fluxpm_hw::Watts;
use serde::{Deserialize, Serialize};

/// Which power management policy the stack runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyKind {
    /// No cluster constraint: every node may draw its nameplate power.
    Unconstrained,
    /// Proportional sharing (paper §III-B1): the global bound is divided
    /// per node; node managers enforce the per-node limit statically via
    /// derived GPU caps.
    Proportional,
    /// FPP (paper §III-B2): proportional sharing plus the FFT-based
    /// per-GPU dynamic controller.
    Fpp,
}

impl PolicyKind {
    /// Display name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Unconstrained => "unconstrained",
            PolicyKind::Proportional => "proportional",
            PolicyKind::Fpp => "fpp",
        }
    }
}

/// Which device class the FPP controllers drive. The algorithm is
/// device-agnostic (paper §III-B2); the paper evaluates GPUs and notes
/// the socket-level extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FppTarget {
    /// Per-GPU capping via NVML (the paper's evaluation).
    Gpu,
    /// Per-socket CPU capping via RAPL/OCC — for CPU-bound workloads
    /// (e.g. the Charm++ NQueens).
    Socket,
    /// Memory-subsystem capping via DRAM RAPL (one controller per node;
    /// the paper's "memory-level power capping" extension).
    Memory,
}

/// Cluster manager → job manager: a job's total power limit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobLimitMsg {
    /// The job.
    pub job: JobId,
    /// Maximum power the whole job may draw.
    pub limit: Watts,
}

/// Job manager → node manager: one node's power limit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeLimitMsg {
    /// Maximum power this node may draw.
    pub limit: Watts,
}

/// Topic: cluster manager → job manager.
pub const TOPIC_JOB_LIMIT: &str = "power-manager.job-limit";
/// Topic: job manager → node manager.
pub const TOPIC_SET_NODE_LIMIT: &str = "power-manager.set-node-limit";

/// Every request the manager stack sends, one variant per topic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ManagerRequest {
    /// Cluster manager → job manager ([`TOPIC_JOB_LIMIT`]).
    JobLimit(JobLimitMsg),
    /// Job manager → node manager ([`TOPIC_SET_NODE_LIMIT`]).
    SetNodeLimit(NodeLimitMsg),
}

impl Protocol for ManagerRequest {
    fn topic(&self) -> &'static str {
        match self {
            ManagerRequest::JobLimit(_) => TOPIC_JOB_LIMIT,
            ManagerRequest::SetNodeLimit(_) => TOPIC_SET_NODE_LIMIT,
        }
    }
}

/// Every reply the manager stack sends: bare acknowledgements that let
/// the pusher's retry loop settle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ManagerReply {
    /// Ack for a [`ManagerRequest::JobLimit`] push.
    JobLimitAck,
    /// Ack for a [`ManagerRequest::SetNodeLimit`] push.
    SetNodeLimitAck,
}

impl Protocol for ManagerReply {
    fn topic(&self) -> &'static str {
        match self {
            ManagerReply::JobLimitAck => TOPIC_JOB_LIMIT,
            ManagerReply::SetNodeLimitAck => TOPIC_SET_NODE_LIMIT,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_names() {
        assert_eq!(PolicyKind::Unconstrained.name(), "unconstrained");
        assert_eq!(PolicyKind::Proportional.name(), "proportional");
        assert_eq!(PolicyKind::Fpp.name(), "fpp");
    }

    #[test]
    fn request_round_trip_checks_topic() {
        use fluxpm_flux::{Message, Rank};
        let req = ManagerRequest::SetNodeLimit(NodeLimitMsg {
            limit: Watts(1200.0),
        });
        let msg = Message::request(Rank(0), Rank(1), req.topic(), req.encode());
        assert_eq!(ManagerRequest::decode(&msg), Ok(req));
        let wrong = Message::request(Rank(0), Rank(1), TOPIC_JOB_LIMIT, req.encode());
        assert!(ManagerRequest::decode(&wrong).is_err());
    }
}
