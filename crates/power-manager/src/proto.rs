//! Manager message payloads and policy identifiers.

use fluxpm_flux::JobId;
use fluxpm_hw::Watts;
use serde::{Deserialize, Serialize};

/// Which power management policy the stack runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyKind {
    /// No cluster constraint: every node may draw its nameplate power.
    Unconstrained,
    /// Proportional sharing (paper §III-B1): the global bound is divided
    /// per node; node managers enforce the per-node limit statically via
    /// derived GPU caps.
    Proportional,
    /// FPP (paper §III-B2): proportional sharing plus the FFT-based
    /// per-GPU dynamic controller.
    Fpp,
}

impl PolicyKind {
    /// Display name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Unconstrained => "unconstrained",
            PolicyKind::Proportional => "proportional",
            PolicyKind::Fpp => "fpp",
        }
    }
}

/// Which device class the FPP controllers drive. The algorithm is
/// device-agnostic (paper §III-B2); the paper evaluates GPUs and notes
/// the socket-level extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FppTarget {
    /// Per-GPU capping via NVML (the paper's evaluation).
    Gpu,
    /// Per-socket CPU capping via RAPL/OCC — for CPU-bound workloads
    /// (e.g. the Charm++ NQueens).
    Socket,
    /// Memory-subsystem capping via DRAM RAPL (one controller per node;
    /// the paper's "memory-level power capping" extension).
    Memory,
}

/// Cluster manager → job manager: a job's total power limit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobLimitMsg {
    /// The job.
    pub job: JobId,
    /// Maximum power the whole job may draw.
    pub limit: Watts,
}

/// Job manager → node manager: one node's power limit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeLimitMsg {
    /// Maximum power this node may draw.
    pub limit: Watts,
}

/// Topic: cluster manager → job manager.
pub const TOPIC_JOB_LIMIT: &str = "power-manager.job-limit";
/// Topic: job manager → node manager.
pub const TOPIC_SET_NODE_LIMIT: &str = "power-manager.set-node-limit";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_names() {
        assert_eq!(PolicyKind::Unconstrained.name(), "unconstrained");
        assert_eq!(PolicyKind::Proportional.name(), "proportional");
        assert_eq!(PolicyKind::Fpp.name(), "fpp");
    }
}
