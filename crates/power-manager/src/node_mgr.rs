//! The node-level manager (paper §III-B).
//!
//! Runs on every rank. Enforces the node's power limit by deriving a
//! per-GPU cap and setting it through Variorum/NVML, tracks node power on
//! its own timer (the "separate thread" of the paper), and — under the
//! FPP policy — runs one [`FppController`] per GPU.
//!
//! **Derived GPU cap.** The manager reserves the node's idle power (CPU
//! idle + memory idle + board) and splits the remaining budget across the
//! GPUs:
//!
//! ```text
//! gpu_cap = clamp((node_limit - idle_node_power) / n_gpus, min, max)
//! ```
//!
//! This is deliberately less conservative than IBM OPAL's 936 W reserve —
//! the difference is precisely why proportional sharing beats the IBM
//! default at the same power budget (paper Table IV: max usage 6.05 kW vs
//! 9.5 kW of a 9.6 kW bound).

use crate::fpp::{FppConfig, FppController, FppDecision};
use crate::proto::{FppTarget, ManagerReply, ManagerRequest, PolicyKind, TOPIC_SET_NODE_LIMIT};
use fluxpm_fft::PeriodAnalyzer;
use fluxpm_flux::{Message, Module, ModuleCtx, MsgKind, Protocol, Topic};
use fluxpm_hw::{NodeId, Watts};
use fluxpm_sim::{SimDuration, TraceLevel};
use std::cell::RefCell;
use std::rc::Rc;

/// Timer tags.
const TIMER_SAMPLE: u64 = 0;
const TIMER_EPOCH: u64 = 1;

/// A timestamped node-power track record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackedPower {
    /// Sample time (seconds on the simulation clock).
    pub t_seconds: f64,
    /// Total node draw.
    pub node: Watts,
}

/// The `flux-power-manager` node-level component.
pub struct NodeLevelManager {
    policy: PolicyKind,
    fpp_config: FppConfig,
    fpp_target: FppTarget,
    /// The node-level power limit currently enforced.
    node_limit: Option<Watts>,
    /// Per-GPU FPP controllers (policy == Fpp only).
    controllers: Vec<FppController>,
    /// One planned-analysis state shared by every controller on this
    /// node: all 4–8 per-GPU epoch analyses reuse the same cached FFT
    /// plans, window tables, scratch arena, and spectrum buffers.
    analyzer: PeriodAnalyzer,
    /// Recent node power history (bounded).
    history: Vec<TrackedPower>,
    /// Cap-set operations that failed (NVML §V failures).
    cap_failures: u64,
    /// The job last seen on this node; FPP controllers reset when a new
    /// job arrives (each job gets its own probe/converge cycle).
    current_job: Option<fluxpm_flux::JobId>,
}

impl NodeLevelManager {
    /// Maximum history records retained.
    const HISTORY_CAP: usize = 4096;

    /// Create an unloaded manager (FPP on GPUs, the paper's evaluation).
    pub fn new(policy: PolicyKind, fpp_config: FppConfig) -> NodeLevelManager {
        NodeLevelManager::with_target(policy, fpp_config, FppTarget::Gpu)
    }

    /// Create an unloaded manager with an explicit FPP device target.
    pub fn with_target(
        policy: PolicyKind,
        fpp_config: FppConfig,
        fpp_target: FppTarget,
    ) -> NodeLevelManager {
        NodeLevelManager {
            policy,
            fpp_config,
            fpp_target,
            node_limit: None,
            controllers: Vec::new(),
            analyzer: PeriodAnalyzer::new(),
            history: Vec::new(),
            cap_failures: 0,
            current_job: None,
        }
    }

    /// Create as a shared module handle.
    pub fn shared(policy: PolicyKind, fpp_config: FppConfig) -> Rc<RefCell<NodeLevelManager>> {
        Rc::new(RefCell::new(NodeLevelManager::new(policy, fpp_config)))
    }

    /// Create as a shared module handle with an explicit FPP target.
    pub fn shared_with_target(
        policy: PolicyKind,
        fpp_config: FppConfig,
        fpp_target: FppTarget,
    ) -> Rc<RefCell<NodeLevelManager>> {
        Rc::new(RefCell::new(NodeLevelManager::with_target(
            policy, fpp_config, fpp_target,
        )))
    }

    /// The node limit currently enforced.
    pub fn node_limit(&self) -> Option<Watts> {
        self.node_limit
    }

    /// Power history tracked so far.
    pub fn history(&self) -> &[TrackedPower] {
        &self.history
    }

    /// NVML set failures observed.
    pub fn cap_failures(&self) -> u64 {
        self.cap_failures
    }

    /// FPP controllers (empty unless the FPP policy is active and a
    /// limit has been applied).
    pub fn controllers(&self) -> &[FppController] {
        &self.controllers
    }

    /// Derive the per-GPU cap from a node limit (see module docs).
    pub fn derive_gpu_cap(arch: &fluxpm_hw::NodeArch, node_limit: Watts) -> Watts {
        let reserve = arch.idle_node_power();
        let budget = (node_limit - reserve).max(Watts::ZERO);
        let per_gpu = budget / arch.gpus.max(1) as f64;
        per_gpu.clamp(arch.capping.min_gpu_cap, arch.capping.max_gpu_cap)
    }

    /// Derive the per-socket cap from a node limit (the socket-level FPP
    /// variant): reserve the non-CPU idle floor, split across sockets.
    pub fn derive_socket_cap(arch: &fluxpm_hw::NodeArch, node_limit: Watts) -> Watts {
        let reserve = arch.idle_node_power() - arch.cpu_idle * arch.sockets as f64;
        let budget = (node_limit - reserve).max(Watts::ZERO);
        let per_socket = budget / arch.sockets.max(1) as f64;
        per_socket.clamp(arch.cpu_idle, arch.cpu_peak)
    }

    /// Derive the memory cap from a node limit: whatever the limit leaves
    /// above the rest of the node's idle floor, clamped into the DRAM
    /// envelope.
    pub fn derive_memory_cap(arch: &fluxpm_hw::NodeArch, node_limit: Watts) -> Watts {
        let reserve = arch.idle_node_power() - arch.mem_idle;
        let budget = (node_limit - reserve).max(Watts::ZERO);
        budget.clamp(arch.mem_idle, arch.mem_peak)
    }

    /// Build the controller set for the configured target.
    fn make_controllers(&self, arch: &fluxpm_hw::NodeArch, limit: Watts) -> Vec<FppController> {
        match self.fpp_target {
            FppTarget::Gpu => {
                let derived = Self::derive_gpu_cap(arch, limit);
                (0..arch.gpus)
                    .map(|_| FppController::new(self.fpp_config.clone(), derived))
                    .collect()
            }
            FppTarget::Socket => {
                let derived = Self::derive_socket_cap(arch, limit);
                (0..arch.sockets)
                    .map(|_| {
                        FppController::with_bounds(
                            self.fpp_config.clone(),
                            derived,
                            arch.cpu_idle,
                            arch.cpu_peak,
                        )
                    })
                    .collect()
            }
            FppTarget::Memory => {
                let derived = Self::derive_memory_cap(arch, limit);
                vec![FppController::with_bounds(
                    self.fpp_config.clone(),
                    derived,
                    arch.mem_idle,
                    arch.mem_peak,
                )]
            }
        }
    }

    /// Apply one controller decision to the hardware dial it targets.
    fn apply_decision(&mut self, ctx: &mut ModuleCtx<'_>, device: usize, cap: Watts) {
        match self.fpp_target {
            FppTarget::Gpu => self.set_gpu_cap(ctx, device, cap),
            FppTarget::Socket => self.set_socket_cap(ctx, device, cap),
            FppTarget::Memory => self.set_memory_cap(ctx, cap),
        }
    }

    fn set_memory_cap(&mut self, ctx: &mut ModuleCtx<'_>, cap: Watts) {
        let node = &mut ctx.world.nodes[ctx.rank.index()];
        if let Err(e) = fluxpm_variorum::cap_memory_power_limit(node, cap) {
            ctx.world.trace.emit(
                ctx.eng.now(),
                TraceLevel::Warn,
                "node-mgr",
                format!("{}: memory cap failed: {e}", ctx.rank),
            );
        }
    }

    fn set_socket_cap(&mut self, ctx: &mut ModuleCtx<'_>, socket: usize, cap: Watts) {
        let node = &mut ctx.world.nodes[ctx.rank.index()];
        if let Err(e) = fluxpm_variorum::cap_socket_power_limit(node, socket, cap) {
            ctx.world.trace.emit(
                ctx.eng.now(),
                TraceLevel::Warn,
                "node-mgr",
                format!("{}: socket {socket} cap failed: {e}", ctx.rank),
            );
        }
    }

    fn apply_limit(&mut self, ctx: &mut ModuleCtx<'_>, limit: Watts) {
        self.node_limit = Some(limit);
        let rank = ctx.rank;
        let arch = ctx.world.nodes[rank.index()].arch.clone();
        if !arch.capping.user_enabled || !arch.capping.gpu_cap {
            ctx.world.trace.emit(
                ctx.eng.now(),
                TraceLevel::Warn,
                "node-mgr",
                format!("{rank}: capping unavailable; limit {limit} not enforceable"),
            );
            return;
        }
        let derived = Self::derive_gpu_cap(&arch, limit);
        // Canonical record for sharded byte-equality checks (no-op on
        // classic worlds): node limit + derived per-GPU cap, milliwatts.
        ctx.world.record(
            ctx.eng.now(),
            rank.0,
            fluxpm_flux::shard::rec::NODE_LIMIT,
            (limit.get() * 1000.0).round() as u64,
            (derived.get() * 1000.0).round() as u64,
        );

        match self.policy {
            PolicyKind::Unconstrained => {}
            PolicyKind::Proportional => {
                self.set_all_gpu_caps(ctx, derived);
            }
            PolicyKind::Fpp => {
                let target_derived = match self.fpp_target {
                    FppTarget::Gpu => derived,
                    FppTarget::Socket => Self::derive_socket_cap(&arch, limit),
                    FppTarget::Memory => Self::derive_memory_cap(&arch, limit),
                };
                if self.controllers.is_empty() {
                    self.controllers = self.make_controllers(&arch, limit);
                } else {
                    for c in &mut self.controllers {
                        c.rebase(target_derived);
                    }
                }
                let caps: Vec<Watts> = self.controllers.iter().map(|c| c.cap()).collect();
                for (device, cap) in caps.into_iter().enumerate() {
                    self.apply_decision(ctx, device, cap);
                }
                // Non-GPU FPP targets still honour the proportional node
                // limit on the GPU side with a static derived cap.
                if self.fpp_target != FppTarget::Gpu {
                    self.set_all_gpu_caps(ctx, derived);
                }
            }
        }
    }

    fn set_all_gpu_caps(&mut self, ctx: &mut ModuleCtx<'_>, cap: Watts) {
        let node = &mut ctx.world.nodes[ctx.rank.index()];
        match fluxpm_variorum::cap_each_gpu_power_limit(node, cap) {
            Ok(outcomes) => {
                self.cap_failures += outcomes.iter().filter(|o| !o.succeeded()).count() as u64;
            }
            Err(e) => {
                ctx.world.trace.emit(
                    ctx.eng.now(),
                    TraceLevel::Warn,
                    "node-mgr",
                    format!("{}: cap_each_gpu failed: {e}", ctx.rank),
                );
            }
        }
    }

    fn set_gpu_cap(&mut self, ctx: &mut ModuleCtx<'_>, gpu: usize, cap: Watts) {
        let node = &mut ctx.world.nodes[ctx.rank.index()];
        match fluxpm_variorum::cap_gpu_power_limit(node, gpu, cap) {
            Ok(outcome) if !outcome.succeeded() => {
                self.cap_failures += 1;
                ctx.world.trace.emit(
                    ctx.eng.now(),
                    TraceLevel::Warn,
                    "node-mgr",
                    format!(
                        "{}: GPU {gpu} cap {cap} not applied ({outcome:?})",
                        ctx.rank
                    ),
                );
            }
            Ok(_) => {}
            Err(e) => {
                ctx.world.trace.emit(
                    ctx.eng.now(),
                    TraceLevel::Warn,
                    "node-mgr",
                    format!("{}: GPU {gpu} cap failed: {e}", ctx.rank),
                );
            }
        }
    }

    /// Sampling tick: track node power; feed FPP buffers. Also detects
    /// job turnover on this node and resets the FPP controllers so every
    /// job gets a fresh probe/converge cycle.
    fn on_sample(&mut self, ctx: &mut ModuleCtx<'_>) {
        let rank = ctx.rank;
        let job_now = ctx.world.jobs.job_on_node(NodeId(rank.0));
        if job_now != self.current_job {
            self.current_job = job_now;
            if job_now.is_some() && !self.controllers.is_empty() {
                if let Some(limit) = self.node_limit {
                    let arch = ctx.world.nodes[rank.index()].arch.clone();
                    self.controllers = self.make_controllers(&arch, limit);
                    let caps: Vec<Watts> = self.controllers.iter().map(|c| c.cap()).collect();
                    for (device, cap) in caps.into_iter().enumerate() {
                        self.apply_decision(ctx, device, cap);
                    }
                }
            }
        }
        let t_seconds = ctx.eng.now().as_secs_f64();
        // Zero-copy read: the resolved draw stays in the node's cache,
        // the per-device feed is a borrowed slice — no `Vec` clones on
        // the 1 Hz sampling tick.
        let draw = ctx.world.nodes[rank.index()].draw_ref();
        if self.history.len() < Self::HISTORY_CAP {
            self.history.push(TrackedPower {
                t_seconds,
                node: draw.total(),
            });
        }
        let feed: &[Watts] = match self.fpp_target {
            FppTarget::Gpu => &draw.gpu,
            FppTarget::Socket => &draw.cpu,
            FppTarget::Memory => std::slice::from_ref(&draw.memory),
        };
        for (c, &g) in self.controllers.iter_mut().zip(feed.iter()) {
            c.store_power_sample(g);
        }
    }

    /// FPP epoch tick: step each controller and apply its decision.
    fn on_epoch(&mut self, ctx: &mut ModuleCtx<'_>) {
        if self.controllers.is_empty() {
            return;
        }
        // Only act while a job occupies this node; an idle node's
        // controllers sit on stale buffers.
        let busy = ctx.world.jobs.job_on_node(NodeId(ctx.rank.0)).is_some();
        // Planned path: every controller's analysis runs through the one
        // shared analyzer, so the whole per-GPU batch reuses a single
        // warm plan/scratch set.
        let analyzer = &mut self.analyzer;
        let decisions: Vec<FppDecision> = self
            .controllers
            .iter_mut()
            .map(|c| c.on_epoch_with(analyzer))
            .collect();
        if !busy {
            return;
        }
        for (device, d) in decisions.into_iter().enumerate() {
            if let FppDecision::Set(cap) = d {
                self.apply_decision(ctx, device, cap);
                ctx.world.trace.emit(
                    ctx.eng.now(),
                    TraceLevel::Info,
                    "fpp",
                    format!("{}: {:?} {device} -> {cap}", ctx.rank, self.fpp_target),
                );
            }
        }
    }
}

impl Module for NodeLevelManager {
    fn name(&self) -> &'static str {
        "power-manager-node"
    }

    fn topics(&self) -> Vec<Topic> {
        vec![TOPIC_SET_NODE_LIMIT.into()]
    }

    fn load(&mut self, ctx: &mut ModuleCtx<'_>) {
        let rank = ctx.rank;
        let name = self.name();
        let sample = SimDuration::from_secs_f64(self.fpp_config.sample_period_s);
        ctx.world.schedule_module_timer(
            ctx.eng,
            rank,
            name,
            ctx.now() + sample,
            sample,
            TIMER_SAMPLE,
        );
        if self.policy == PolicyKind::Fpp {
            let epoch = SimDuration::from_secs_f64(self.fpp_config.powercap_time_s);
            ctx.world.schedule_module_timer(
                ctx.eng,
                rank,
                name,
                ctx.now() + epoch,
                epoch,
                TIMER_EPOCH,
            );
        }
    }

    fn handle(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Message) {
        if msg.kind == MsgKind::Request && msg.topic == TOPIC_SET_NODE_LIMIT {
            if let Ok(ManagerRequest::SetNodeLimit(m)) = ManagerRequest::decode(msg) {
                self.apply_limit(ctx, m.limit);
            }
            // Ack so the job-level manager's retry loop can settle.
            ctx.world
                .respond(ctx.eng, msg, ManagerReply::SetNodeLimitAck.encode());
        }
    }

    fn timer(&mut self, ctx: &mut ModuleCtx<'_>, tag: u64) {
        match tag {
            TIMER_SAMPLE => self.on_sample(ctx),
            TIMER_EPOCH => self.on_epoch(ctx),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluxpm_hw::lassen;

    #[test]
    fn derived_cap_matches_calibration() {
        let arch = lassen();
        // 1200 W limit - 400 W idle reserve = 800 / 4 GPUs = 200 W.
        assert_eq!(
            NodeLevelManager::derive_gpu_cap(&arch, Watts(1200.0)),
            Watts(200.0)
        );
        // 1600 W -> 300 W (clamped to vendor max).
        assert_eq!(
            NodeLevelManager::derive_gpu_cap(&arch, Watts(1600.0)),
            Watts(300.0)
        );
        // Very low limit clamps to the vendor minimum.
        assert_eq!(
            NodeLevelManager::derive_gpu_cap(&arch, Watts(500.0)),
            Watts(100.0)
        );
    }

    #[test]
    fn memory_cap_derivation() {
        let arch = lassen();
        // 1200 W limit - (400 - 40) idle-minus-mem reserve = 840 ->
        // clamped to the 120 W DRAM peak.
        assert_eq!(
            NodeLevelManager::derive_memory_cap(&arch, Watts(1200.0)),
            Watts(120.0)
        );
        // A very low limit floors at the DRAM idle.
        assert_eq!(
            NodeLevelManager::derive_memory_cap(&arch, Watts(300.0)),
            Watts(40.0)
        );
    }

    #[test]
    fn manager_derivation_less_conservative_than_opal() {
        // The design point the paper measures: at the same 1200 W budget,
        // OPAL gives each GPU 100 W while the manager gives 200 W.
        let arch = lassen();
        let mut opal = fluxpm_hw::OpalState::for_arch(&arch).unwrap();
        opal.set_node_cap(Watts(1200.0));
        let ibm = opal.derived_gpu_cap().unwrap();
        let ours = NodeLevelManager::derive_gpu_cap(&arch, Watts(1200.0));
        assert!(ours > ibm, "{ours} vs IBM {ibm}");
    }
}
