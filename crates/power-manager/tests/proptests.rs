//! Property-based tests for the manager's pure decision logic.

use fluxpm_flux::JobId;
use fluxpm_hw::Watts;
use fluxpm_manager::{FppConfig, FppController, ProportionalAllocator};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The proportional allocator never exceeds the global bound, keeps
    /// the per-node allocation uniform, and reclaims monotonically,
    /// under arbitrary admit/release sequences.
    #[test]
    fn allocator_invariants(
        bound in 2_000.0f64..50_000.0,
        ops in prop::collection::vec((1u32..16, any::<bool>()), 1..60),
    ) {
        let peak = Watts(3050.0);
        let mut a = ProportionalAllocator::new(Watts(bound), peak);
        let mut live: Vec<(JobId, u32)> = Vec::new();
        let mut next = 0u64;
        for (nnodes, release) in ops {
            if release && !live.is_empty() {
                let before = a.per_node_limit();
                let (gone, _) = live.remove(0);
                let after = a.release(gone);
                // Reclaim never shrinks the per-node share.
                prop_assert!(after >= before - Watts(1e-9));
            } else {
                let id = JobId(next);
                next += 1;
                let before = a.per_node_limit();
                let after = a.admit(id, nnodes);
                // Admission never grows the per-node share.
                prop_assert!(after <= before + Watts(1e-9));
                live.push((id, nnodes));
            }
            prop_assert!(a.total_allocated().get() <= bound + 1e-6);
            let per = a.per_node_limit();
            prop_assert!(per <= peak && per.get() > 0.0);
            // Uniformity: every job's limit is per-node * nnodes.
            for &(id, n) in &live {
                let limit = a.job_limit(id).expect("live job has a limit");
                prop_assert!(limit.approx_eq(per * n as f64, 1e-6));
            }
        }
    }

    /// The FPP controller's cap always stays inside the device bounds
    /// and below the derived limit envelope, for arbitrary signals.
    #[test]
    fn fpp_cap_always_in_bounds(
        power_lim in 80.0f64..400.0,
        signals in prop::collection::vec(0.0f64..400.0, 90 * 4..90 * 6),
    ) {
        let cfg = FppConfig::default();
        let mut c = FppController::new(cfg, Watts(power_lim));
        for chunk in signals.chunks(90) {
            for &w in chunk {
                c.store_power_sample(Watts(w));
            }
            c.on_epoch();
            let cap = c.cap().get();
            prop_assert!((100.0..=300.0).contains(&cap), "cap {cap}");
        }
    }

    /// A stable periodic signal always converges within 3 epochs, and
    /// the converged cap never exceeds the starting cap.
    #[test]
    fn fpp_converges_on_stable_signals(
        period in 6.0f64..25.0,
        hi in 120.0f64..260.0,
        lo in 50.0f64..110.0,
    ) {
        prop_assume!(hi > lo + 30.0);
        let mut c = FppController::new(FppConfig::default(), Watts(253.5));
        let start = c.cap();
        for _ in 0..3 {
            for t in 0..90 {
                let w = if (t as f64 / period).fract() < 0.3 { hi } else { lo };
                c.store_power_sample(Watts(w.min(c.cap().get())));
            }
            c.on_epoch();
        }
        prop_assert!(c.converged(), "stable signal must converge");
        prop_assert!(c.cap() <= start + Watts(1e-9));
    }

    /// Rebase never pushes the cap outside the new limit envelope.
    #[test]
    fn fpp_rebase_respects_limit(
        lim1 in 100.0f64..300.0,
        lim2 in 100.0f64..300.0,
    ) {
        let mut c = FppController::new(FppConfig::default(), Watts(lim1));
        c.rebase(Watts(lim2));
        let env = 300.0f64.min(lim2).max(100.0);
        prop_assert!(c.cap().get() <= env + 1e-9, "cap {} vs env {env}", c.cap());
    }
}
