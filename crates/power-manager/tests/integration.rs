//! End-to-end manager tests: the paper's §IV-D scenario (GEMM on 6
//! nodes plus Quicksilver on 2 nodes, 8-node Lassen cluster, 9.6 kW
//! bound) run through the full module stack.

use fluxpm_flux::{FluxEngine, JobSpec, World};
use fluxpm_hw::{MachineKind, Watts};
use fluxpm_manager::{ManagerConfig, NodeLevelManager, PolicyKind};
use fluxpm_sim::{Engine, SimDuration, SimTime};
use fluxpm_workloads::{gemm, quicksilver, App, JitterModel};
use std::cell::RefCell;
use std::ops::ControlFlow;
use std::rc::Rc;

/// Build the Table IV scenario world. Returns (world, engine, gemm, qs).
fn scenario(config: Option<ManagerConfig>, static_node_cap: Option<f64>) -> (World, FluxEngine) {
    let mut w = World::new(MachineKind::Lassen, 8, 42);
    w.autostop_after = Some(2);
    let mut eng: FluxEngine = Engine::new();
    // Static baseline cap via OPAL on every node (the validated 1950 W
    // cap in the managed configurations).
    if let Some(cap) = static_node_cap {
        for n in &mut w.nodes {
            n.set_node_cap(Watts(cap)).unwrap();
        }
    }
    if let Some(c) = config {
        fluxpm_manager::load(&mut w, &mut eng, c);
    }
    w.install_executor(&mut eng);
    (w, eng)
}

fn submit_tab4_jobs(
    w: &mut World,
    eng: &mut FluxEngine,
) -> (fluxpm_flux::JobId, fluxpm_flux::JobId) {
    let g = App::with_jitter(gemm(), MachineKind::Lassen, 6, 1, JitterModel::none())
        .with_work_scale(2.0);
    let q = App::with_jitter(
        quicksilver(),
        MachineKind::Lassen,
        2,
        2,
        JitterModel::none(),
    )
    .with_work_seconds(348.0);
    let gid = w.submit(eng, JobSpec::new("GEMM", 6), Box::new(g));
    let qid = w.submit(eng, JobSpec::new("Quicksilver", 2), Box::new(q));
    (gid, qid)
}

/// Sample cluster power every 2 s; returns (max_kw, sum_kws for avg).
fn watch_cluster_power(eng: &mut FluxEngine) -> Rc<RefCell<Vec<f64>>> {
    let samples = Rc::new(RefCell::new(Vec::new()));
    let s = Rc::clone(&samples);
    eng.schedule_every(
        SimTime::from_secs(2),
        SimDuration::from_secs(2),
        move |w: &mut World, _| {
            if w.halted {
                return ControlFlow::Break(());
            }
            s.borrow_mut().push(w.cluster_power().get());
            ControlFlow::Continue(())
        },
    );
    samples
}

#[test]
fn unconstrained_baseline_matches_table4() {
    let (mut w, mut eng) = scenario(None, None);
    let power = watch_cluster_power(&mut eng);
    let (gid, qid) = submit_tab4_jobs(&mut w, &mut eng);
    eng.run(&mut w);
    let g_rt = w.jobs.get(gid).unwrap().runtime_seconds().unwrap();
    let q_rt = w.jobs.get(qid).unwrap().runtime_seconds().unwrap();
    // Paper: GEMM 548 s, QS 348 s.
    assert!((g_rt - 548.0).abs() < 15.0, "GEMM {g_rt}");
    assert!((q_rt - 348.0).abs() < 10.0, "QS {q_rt}");
    // Paper Table III: max cluster power 10.66 kW, average 8.9 kW of a
    // 24.4 kW allowance (worst-case provisioning).
    let p = power.borrow();
    let max = p.iter().copied().fold(0.0f64, f64::max);
    assert!((max - 10_660.0).abs() < 800.0, "max cluster power {max}");
    assert!(max < 24_400.0 * 0.5, "most provisioned power unused");
}

#[test]
fn ibm_default_1200_underuses_budget_and_slows_gemm() {
    // Paper Table III/IV: OPAL at 1200 W caps each GPU at 100 W; the
    // cluster tops out at ~6.05 kW of the 9.6 kW bound and GEMM runs
    // 1145 s (2.09x).
    let (mut w, mut eng) = scenario(None, Some(1200.0));
    let power = watch_cluster_power(&mut eng);
    let (gid, _) = submit_tab4_jobs(&mut w, &mut eng);
    eng.run(&mut w);
    let g_rt = w.jobs.get(gid).unwrap().runtime_seconds().unwrap();
    assert!(
        (g_rt - 1145.0).abs() < 80.0,
        "GEMM under IBM default: {g_rt}"
    );
    let p = power.borrow();
    let max = p.iter().copied().fold(0.0f64, f64::max);
    assert!(max < 7_000.0, "IBM default wastes budget: max {max} W");
}

#[test]
fn proportional_sharing_reallocates_on_finish() {
    let cfg = ManagerConfig::proportional(Watts(9600.0));
    let (mut w, mut eng) = scenario(Some(cfg), Some(1950.0));
    let power = watch_cluster_power(&mut eng);
    let (gid, qid) = submit_tab4_jobs(&mut w, &mut eng);
    // Track GEMM node-0 GPU cap before and after QS finishes.
    let caps = Rc::new(RefCell::new(Vec::new()));
    let c2 = Rc::clone(&caps);
    eng.schedule_every(
        SimTime::from_secs(5),
        SimDuration::from_secs(5),
        move |w: &mut World, _| {
            if w.halted {
                return ControlFlow::Break(());
            }
            let cap = w.nodes[0].nvml.gpu_cap(0).map(|c| c.get()).unwrap_or(300.0);
            c2.borrow_mut().push((w.jobs.running().len(), cap));
            ControlFlow::Continue(())
        },
    );
    eng.run(&mut w);

    let g_rt = w.jobs.get(gid).unwrap().runtime_seconds().unwrap();
    let q_rt = w.jobs.get(qid).unwrap().runtime_seconds().unwrap();
    // Paper Table IV: GEMM 597 s, QS 347 s.
    assert!(
        (g_rt - 597.0).abs() < 30.0,
        "GEMM under proportional: {g_rt}"
    );
    assert!((q_rt - 347.0).abs() < 10.0, "QS under proportional: {q_rt}");

    // While both jobs run, GEMM's GPUs are capped at 200 W (derived from
    // the 1200 W/node share); afterwards the cap rises to 300 W.
    let caps = caps.borrow();
    let while_both: Vec<f64> = caps
        .iter()
        .filter(|(n, _)| *n == 2)
        .map(|(_, c)| *c)
        .collect();
    let after: Vec<f64> = caps
        .iter()
        .filter(|(n, _)| *n == 1)
        .map(|(_, c)| *c)
        .collect();
    assert!(
        while_both.iter().all(|&c| (c - 200.0).abs() < 1.0),
        "{while_both:?}"
    );
    assert!(after.iter().all(|&c| (c - 300.0).abs() < 1.0), "{after:?}");

    // Cluster power never violates the 9.6 kW bound.
    let p = power.borrow();
    let max = p.iter().copied().fold(0.0f64, f64::max);
    assert!(max <= 9_600.0 + 50.0, "bound violated: {max}");
    // ... and uses the budget far better than the IBM default's 6.05 kW.
    assert!(max > 7_500.0, "proportional uses the budget: {max}");
}

#[test]
fn fpp_saves_energy_vs_proportional_with_small_slowdown() {
    // Run proportional, then FPP, compare GEMM energy and runtime
    // (paper: FPP -1.2 % energy, +0.8 % time vs proportional).
    let run = |cfg: ManagerConfig| {
        let (mut w, mut eng) = scenario(Some(cfg), Some(1950.0));
        let (gid, _) = submit_tab4_jobs(&mut w, &mut eng);
        eng.run(&mut w);
        let g = w.jobs.get(gid).unwrap();
        let rt = g.runtime_seconds().unwrap();
        // Average per-node energy over the GEMM nodes for the GEMM window.
        let nodes = g.nodes.clone();
        let energy: f64 = nodes
            .iter()
            .map(|n| w.nodes[n.index()].meter.total.get())
            .sum::<f64>()
            / nodes.len() as f64;
        (rt, energy)
    };
    let (rt_prop, e_prop) = run(ManagerConfig::proportional(Watts(9600.0)));
    let (rt_fpp, e_fpp) = run(ManagerConfig::fpp(Watts(9600.0)));

    let energy_gain = (e_prop - e_fpp) / e_prop;
    let slowdown = rt_fpp / rt_prop - 1.0;
    assert!(
        energy_gain > 0.0 && energy_gain < 0.08,
        "FPP should save a few percent energy: {energy_gain}"
    );
    assert!(
        (-0.005..0.06).contains(&slowdown),
        "FPP slowdown should be small: {slowdown}"
    );
}

#[test]
fn fpp_caps_probe_then_stabilize() {
    let cfg = ManagerConfig::fpp(Watts(9600.0));
    let (mut w, mut eng) = scenario(Some(cfg), Some(1950.0));
    submit_tab4_jobs(&mut w, &mut eng);
    // Record node 0's NVML GPU-0 cap every 10 s: it should start at the
    // derived 200 W, dip by 50 W during the probe epoch, and stabilize.
    let caps = Rc::new(RefCell::new(Vec::new()));
    let c2 = Rc::clone(&caps);
    eng.schedule_every(
        SimTime::from_secs(10),
        SimDuration::from_secs(10),
        move |w: &mut World, _| {
            if w.halted {
                return ControlFlow::Break(());
            }
            if let Some(c) = w.nodes[0].nvml.gpu_cap(0) {
                c2.borrow_mut().push(c.get());
            }
            ControlFlow::Continue(())
        },
    );
    eng.run(&mut w);
    assert!(w.jobs.all_complete());
    let caps = caps.borrow();
    assert!(!caps.is_empty());
    assert!(
        caps.iter().any(|&c| (c - 200.0).abs() < 1.0),
        "initial derived cap seen: {caps:?}"
    );
    assert!(
        caps.iter().any(|&c| (c - 150.0).abs() < 1.0),
        "probe dip seen: {caps:?}"
    );
    // After enough epochs the cap stops changing (converged/rebased).
    let tail: Vec<f64> = caps.iter().rev().take(5).copied().collect();
    assert!(
        tail.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-9),
        "tail stable: {tail:?}"
    );
}

#[test]
fn manager_noop_on_tioga_without_panic() {
    // Capping is disabled on Tioga; the manager must degrade gracefully.
    let mut w = World::new(MachineKind::Tioga, 4, 7);
    w.autostop_after = Some(1);
    let mut eng: FluxEngine = Engine::new();
    fluxpm_manager::load(&mut w, &mut eng, ManagerConfig::proportional(Watts(4000.0)));
    w.install_executor(&mut eng);
    let app = App::with_jitter(quicksilver(), MachineKind::Tioga, 2, 3, JitterModel::none());
    let id = w.submit(&mut eng, JobSpec::new("Quicksilver", 2), Box::new(app));
    eng.run(&mut w);
    assert!(w.jobs.get(id).unwrap().runtime_seconds().is_some());
}

#[test]
fn derived_caps_respect_opal_interaction() {
    // With the 1950 W OPAL baseline cap in force, the effective GPU cap
    // is min(manager NVML cap, OPAL derived 253.5 W).
    let cfg = ManagerConfig::proportional(Watts(9600.0));
    let (mut w, mut eng) = scenario(Some(cfg), Some(1950.0));
    let (_, qid) = submit_tab4_jobs(&mut w, &mut eng);
    // After QS finishes the manager raises NVML caps to 300, but OPAL's
    // derived cap still clamps at ~253.5 W.
    let caps = Rc::new(RefCell::new(Vec::new()));
    let c2 = Rc::clone(&caps);
    eng.schedule_every(
        SimTime::from_secs(400),
        SimDuration::from_secs(50),
        move |w: &mut World, _| {
            if w.halted {
                return ControlFlow::Break(());
            }
            c2.borrow_mut().push(w.nodes[0].effective_gpu_caps()[0]);
            ControlFlow::Continue(())
        },
    );
    eng.run(&mut w);
    assert!(w.jobs.get(qid).unwrap().runtime_seconds().unwrap() < 400.0);
    for cap in caps.borrow().iter().flatten() {
        assert!(cap.approx_eq(Watts(253.5), 0.6), "effective cap {cap}");
    }
    let _ = NodeLevelManager::new(PolicyKind::Proportional, Default::default());
}

#[test]
fn socket_level_fpp_controls_cpu_bound_job() {
    // The paper's device-agnostic claim: FPP on CPU sockets for a
    // Charm++ NQueens (CPU-only) job. The controllers probe the socket
    // caps down; NQueens' 170 W/socket demand makes the probed cap bind,
    // so the power is given back and the controllers converge.
    let cfg = ManagerConfig::fpp_sockets(Watts(9600.0));
    let mut w = World::new(MachineKind::Lassen, 4, 11);
    w.autostop_after = Some(1);
    let mut eng: FluxEngine = Engine::new();
    for n in &mut w.nodes {
        n.set_node_cap(Watts(1950.0)).unwrap();
    }
    fluxpm_manager::load(&mut w, &mut eng, cfg);
    w.install_executor(&mut eng);
    let app = App::with_jitter(
        fluxpm_workloads::nqueens(),
        MachineKind::Lassen,
        2,
        3,
        JitterModel::none(),
    )
    .with_work_seconds(400.0);
    let id = w.submit(&mut eng, JobSpec::new("NQueens", 2), Box::new(app));

    // Watch node 0's socket-0 RAPL cap.
    let caps = Rc::new(RefCell::new(Vec::new()));
    let c2 = Rc::clone(&caps);
    eng.schedule_every(
        SimTime::from_secs(10),
        SimDuration::from_secs(10),
        move |w: &mut World, _| {
            if w.halted {
                return ControlFlow::Break(());
            }
            c2.borrow_mut()
                .push(w.nodes[0].rapl.socket_cap(0).map(|c| c.get()));
            ControlFlow::Continue(())
        },
    );
    eng.run(&mut w);
    let rt = w.jobs.get(id).unwrap().runtime_seconds().unwrap();

    let caps = caps.borrow();
    let set: Vec<f64> = caps.iter().flatten().copied().collect();
    assert!(!set.is_empty(), "socket caps were set: {caps:?}");
    // Initial derived cap is the socket TDP (1950 W limit has plenty of
    // headroom); the probe dips 50 W below; the give-back restores it.
    assert!(
        set.iter().any(|&c| (c - 190.0).abs() < 1.0),
        "TDP cap seen: {set:?}"
    );
    assert!(
        set.iter().any(|&c| (c - 140.0).abs() < 1.0),
        "probe dip seen: {set:?}"
    );
    assert_eq!(*set.last().unwrap(), 190.0, "restored after binding probe");
    // The probe epoch slows the CPU-bound app only briefly.
    assert!((400.0..440.0).contains(&rt), "runtime {rt}");
}

#[test]
fn memory_level_fpp_probes_and_restores() {
    // The third device class: DRAM capping. Laghos' 60 W memory demand
    // sits above the probed cap, so the probe binds and is given back.
    let cfg = ManagerConfig::fpp_memory(Watts(9600.0));
    let mut w = World::new(MachineKind::Lassen, 4, 13);
    w.autostop_after = Some(1);
    let mut eng: FluxEngine = Engine::new();
    fluxpm_manager::load(&mut w, &mut eng, cfg);
    w.install_executor(&mut eng);
    let app = App::with_jitter(
        fluxpm_workloads::laghos(),
        MachineKind::Lassen,
        2,
        5,
        JitterModel::none(),
    )
    .with_work_seconds(400.0);
    let id = w.submit(&mut eng, JobSpec::new("Laghos", 2), Box::new(app));

    let caps = Rc::new(RefCell::new(Vec::new()));
    let c2 = Rc::clone(&caps);
    eng.schedule_every(
        SimTime::from_secs(10),
        SimDuration::from_secs(10),
        move |w: &mut World, _| {
            if w.halted {
                return ControlFlow::Break(());
            }
            c2.borrow_mut().push(w.nodes[0].dram.cap().map(|c| c.get()));
            ControlFlow::Continue(())
        },
    );
    eng.run(&mut w);
    assert!(w.jobs.get(id).unwrap().runtime_seconds().is_some());

    let caps = caps.borrow();
    let set: Vec<f64> = caps.iter().flatten().copied().collect();
    assert!(!set.is_empty(), "memory caps were set: {caps:?}");
    // Derived cap = DRAM peak (120 W); probe dips 50 W to 70 W, which
    // binds against Laghos' 60 W draw? No: 60 < 70, the cap is slack, so
    // the probe savings are kept and the controller converges at 70 W.
    assert!(
        set.iter().any(|&c| (c - 120.0).abs() < 1.0),
        "initial: {set:?}"
    );
    assert!(
        set.iter().any(|&c| (c - 70.0).abs() < 1.0),
        "probe: {set:?}"
    );
    assert_eq!(*set.last().unwrap(), 70.0, "slack probe kept");
    // Laghos' memory draw is unaffected (60 W demand < 70 W cap).
    assert_eq!(
        w.nodes[0].draw().memory,
        Watts(40.0),
        "idle after completion"
    );
}

/// The paper: FPP "is executed on a per-GPU basis, allowing for
/// non-uniform power distribution among GPUs on the same node." A job
/// that loads GPU 0 heavily and leaves GPUs 1-3 mostly idle ends up with
/// different converged caps per GPU.
#[test]
fn fpp_allows_non_uniform_per_gpu_caps() {
    use fluxpm_flux::{JobProgram, StepCtx, StepOutcome};
    use fluxpm_hw::PowerDemand;

    struct Lopsided {
        secs: f64,
        done: f64,
    }
    impl JobProgram for Lopsided {
        fn app_name(&self) -> &str {
            "lopsided"
        }
        fn on_start(&mut self, ctx: &mut StepCtx<'_>) {
            for n in &mut ctx.nodes {
                let arch = n.arch.clone();
                let mut gpu = vec![fluxpm_hw::Watts(60.0); arch.gpus];
                gpu[0] = fluxpm_hw::Watts(290.0); // only GPU 0 is hot
                n.set_demand(PowerDemand {
                    cpu: vec![fluxpm_hw::Watts(120.0); arch.sockets],
                    memory: fluxpm_hw::Watts(70.0),
                    gpu,
                    other: arch.other,
                });
            }
        }
        fn step(&mut self, ctx: &mut StepCtx<'_>) -> StepOutcome {
            self.done += ctx.dt;
            if self.done >= self.secs {
                StepOutcome::Done {
                    leftover_seconds: self.done - self.secs,
                }
            } else {
                StepOutcome::Running
            }
        }
    }

    let mut w = World::new(MachineKind::Lassen, 2, 17);
    w.autostop_after = Some(1);
    let mut eng: FluxEngine = Engine::new();
    for n in &mut w.nodes {
        n.set_node_cap(Watts(1950.0)).unwrap();
    }
    fluxpm_manager::load(&mut w, &mut eng, ManagerConfig::fpp(Watts(2.0 * 1950.0)));
    w.install_executor(&mut eng);
    w.submit(
        &mut eng,
        JobSpec::new("lopsided", 1),
        Box::new(Lopsided {
            secs: 400.0,
            done: 0.0,
        }),
    );
    eng.run(&mut w);

    // Per-node share = 1950 -> derived per-GPU 300 (clamped). Probe dips
    // all four to 250; GPU 0's cap binds (draw 250 = cap) and is given
    // back; GPUs 1-3 sit at 60 W draw, keep the probed cap.
    let caps: Vec<f64> = (0..4)
        .map(|g| w.nodes[0].nvml.gpu_cap(g).map(|c| c.get()).unwrap_or(300.0))
        .collect();
    assert!(
        caps[0] > caps[1] + 40.0,
        "hot GPU restored above idle GPUs: {caps:?}"
    );
    assert_eq!(caps[1], caps[2]);
    assert_eq!(caps[2], caps[3]);
}
