//! FPP decision equivalence: the planned epoch path
//! (`on_epoch_with` + shared `PeriodAnalyzer`, zero-copy ring view) must
//! produce **byte-identical** decisions to the reference path
//! (`on_epoch`, copied `Vec` + unplanned FFT) on every scenario the repo
//! exercises — chaos-soak-style seeded signals, the §IV-E queue
//! restore loop, Welch mode, and the whole decision-space battery.
//!
//! Why byte-identical is achievable: the two paths share one `decide()`
//! op sequence and a bit-identical mean; only the FFT kernel differs, by
//! ~1e-15 relative, and FPP's thresholded comparisons (2 s / 5 s deltas,
//! 5 % confidence, binding margin) never sit within a ulp of a
//! boundary on realistic power traces. Every cap a decision carries is
//! pure `Watts` arithmetic, so the golden traces stay unchanged.

use fluxpm_fft::PeriodAnalyzer;
use fluxpm_hw::Watts;
use fluxpm_manager::{FppConfig, FppController, FppDecision};

/// Drive the same controller state down both paths and assert bitwise
/// equality of every decision and all observable state, epoch by epoch.
/// `feed(epoch) -> samples` generates each epoch's trace.
fn assert_paths_identical(
    label: &str,
    config: FppConfig,
    power_lim: Watts,
    epochs: usize,
    mut feed: impl FnMut(usize) -> Vec<f64>,
) {
    let mut reference = FppController::new(config.clone(), power_lim);
    let mut planned = FppController::new(config, power_lim);
    let mut analyzer = PeriodAnalyzer::new();
    for epoch in 0..epochs {
        let samples = feed(epoch);
        for &s in &samples {
            reference.store_power_sample(Watts(s));
            planned.store_power_sample(Watts(s));
        }
        let d_ref = reference.on_epoch();
        let d_new = planned.on_epoch_with(&mut analyzer);
        assert_decisions_bitwise(label, epoch, d_ref, d_new);
        assert_eq!(
            reference.cap().get().to_bits(),
            planned.cap().get().to_bits(),
            "{label}: cap diverged at epoch {epoch}"
        );
        assert_eq!(
            reference.converged(),
            planned.converged(),
            "{label}: convergence flag diverged at epoch {epoch}"
        );
        assert_eq!(reference.epochs(), planned.epochs());
        assert_eq!(reference.buffered(), 0);
        assert_eq!(planned.buffered(), 0, "{label}: planned path must reset");
    }
}

fn assert_decisions_bitwise(label: &str, epoch: usize, a: FppDecision, b: FppDecision) {
    let same = match (a, b) {
        (FppDecision::Keep(x), FppDecision::Keep(y)) => x.get().to_bits() == y.get().to_bits(),
        (FppDecision::Set(x), FppDecision::Set(y)) => x.get().to_bits() == y.get().to_bits(),
        _ => false,
    };
    assert!(
        same,
        "{label}: epoch {epoch} decisions differ: {a:?} vs {b:?}"
    );
}

fn square_wave(n: usize, period_s: f64, hi: f64, lo: f64) -> Vec<f64> {
    (0..n)
        .map(|t| {
            if (t as f64 / period_s).fract() < 0.3 {
                hi
            } else {
                lo
            }
        })
        .collect()
}

fn lcg_noise(seed: u64) -> impl FnMut() -> f64 {
    let mut state = seed;
    move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    }
}

#[test]
fn quicksilver_like_probe_then_converge() {
    assert_paths_identical("quicksilver", FppConfig::default(), Watts(253.5), 4, |_| {
        square_wave(90, 10.0, 140.0, 55.0)
    });
}

#[test]
fn gemm_like_binding_give_back() {
    // Flat draw pinned at whatever the cap is: probe, binding fallback,
    // instant restore, then hold.
    let caps = std::cell::Cell::new(253.5);
    assert_paths_identical(
        "gemm-binding",
        FppConfig::default(),
        Watts(253.5),
        4,
        |epoch| {
            // Epoch 0 at the initial cap, epoch 1 at the probe cap.
            let level = if epoch == 0 { 253.5 } else { caps.get() };
            caps.set(203.5);
            vec![level; 90]
        },
    );
}

#[test]
fn period_stretch_give_back() {
    assert_paths_identical("stretch", FppConfig::default(), Watts(300.0), 3, |epoch| {
        let period = if epoch == 0 { 10.0 } else { 18.0 };
        square_wave(90, period, 290.0, 100.0)
    });
}

#[test]
fn mild_shrink_reduces_further() {
    assert_paths_identical("shrink", FppConfig::default(), Watts(300.0), 3, |epoch| {
        let period = if epoch == 0 { 14.0 } else { 11.0 };
        square_wave(90, period, 200.0, 80.0)
    });
}

#[test]
fn chaos_seed_style_signals() {
    // The chaos-soak harness drives node demand from small-integer
    // seeds; mirror that here: per-seed LCG noise over drifting square
    // waves, long horizon, both estimator modes.
    for seed in [11u64, 29, 47] {
        for use_welch in [false, true] {
            let cfg = FppConfig {
                use_welch,
                ..FppConfig::default()
            };
            let mut noise = lcg_noise(seed);
            assert_paths_identical(
                &format!("chaos seed {seed} welch={use_welch}"),
                cfg,
                Watts(253.5),
                8,
                move |epoch| {
                    let period = 8.0 + (seed % 7) as f64 + (epoch % 3) as f64;
                    square_wave(90, period, 150.0, 60.0)
                        .into_iter()
                        .map(|v| v + 5.0 * noise())
                        .collect()
                },
            );
        }
    }
}

#[test]
fn welch_mode_long_epochs() {
    // The Welch-mode unit scenario: 180 samples per epoch, noisy
    // square wave.
    let cfg = FppConfig {
        use_welch: true,
        ..FppConfig::default()
    };
    let mut noise = lcg_noise(0xD00D);
    assert_paths_identical("welch-long", cfg, Watts(253.5), 3, move |_| {
        square_wave(180, 10.0, 140.0, 55.0)
            .into_iter()
            .map(|v| v + 10.0 * noise())
            .collect()
    });
}

#[test]
fn staged_give_back_restore_ladder() {
    // The §IV-E queue scenario (`epochs_to_restore`): flat draw pinned
    // at the current cap keeps the binding fallback firing; staged mode
    // climbs the level ladder over several epochs.
    for staged in [false, true] {
        let cfg = FppConfig {
            staged_give_back: staged,
            ..FppConfig::default()
        };
        let pre_probe = 253.5;
        let mut reference = FppController::new(cfg.clone(), Watts(pre_probe));
        let mut planned = FppController::new(cfg, Watts(pre_probe));
        let mut analyzer = PeriodAnalyzer::new();
        for epoch in 0..8 {
            // Feed each controller its *own* cap (they must agree, which
            // the assertion below pins).
            for c in [&mut reference, &mut planned] {
                let draw = c.cap().get();
                for _ in 0..90 {
                    c.store_power_sample(Watts(draw));
                }
            }
            let d_ref = reference.on_epoch();
            let d_new = planned.on_epoch_with(&mut analyzer);
            assert_decisions_bitwise(&format!("queue staged={staged}"), epoch, d_ref, d_new);
            assert_eq!(
                reference.cap().get().to_bits(),
                planned.cap().get().to_bits()
            );
        }
        assert!(reference.converged());
        assert!((reference.cap().get() - pre_probe).abs() < 1e-9, "restored");
    }
}

#[test]
fn no_samples_and_short_epochs() {
    // Degenerate feeds: empty epochs, then too-short epochs — the
    // binding fallback and gates must agree.
    assert_paths_identical("empty", FppConfig::default(), Watts(300.0), 3, |_| vec![]);
    assert_paths_identical("short", FppConfig::default(), Watts(300.0), 3, |_| {
        vec![120.0; 5]
    });
}

#[test]
fn socket_bounds_variant() {
    // Device-agnostic form with non-GPU bounds (socket-level FPP).
    let cfg = FppConfig::default();
    let mut reference =
        FppController::with_bounds(cfg.clone(), Watts(180.0), Watts(60.0), Watts(200.0));
    let mut planned = FppController::with_bounds(cfg, Watts(180.0), Watts(60.0), Watts(200.0));
    let mut analyzer = PeriodAnalyzer::new();
    for epoch in 0..5 {
        for s in square_wave(90, 12.0, 170.0, 70.0) {
            reference.store_power_sample(Watts(s));
            planned.store_power_sample(Watts(s));
        }
        let d_ref = reference.on_epoch();
        let d_new = planned.on_epoch_with(&mut analyzer);
        assert_decisions_bitwise("socket", epoch, d_ref, d_new);
    }
}

#[test]
fn rebase_mid_flight_stays_identical() {
    let cfg = FppConfig::default();
    let mut reference = FppController::new(cfg.clone(), Watts(300.0));
    let mut planned = FppController::new(cfg, Watts(300.0));
    let mut analyzer = PeriodAnalyzer::new();
    for epoch in 0..6 {
        if epoch == 2 {
            reference.rebase(Watts(260.0));
            planned.rebase(Watts(260.0));
        }
        for s in square_wave(90, 10.0, 240.0, 90.0) {
            reference.store_power_sample(Watts(s));
            planned.store_power_sample(Watts(s));
        }
        let d_ref = reference.on_epoch();
        let d_new = planned.on_epoch_with(&mut analyzer);
        assert_decisions_bitwise("rebase", epoch, d_ref, d_new);
        assert_eq!(
            reference.cap().get().to_bits(),
            planned.cap().get().to_bits()
        );
    }
}
