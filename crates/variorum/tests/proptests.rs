//! Property-based tests for the Variorum JSON encoding.

use fluxpm_variorum::NodePowerSample;
use proptest::prelude::*;

prop_compose! {
    fn any_sample()(
        hostname in "[a-z][a-z0-9]{0,15}",
        timestamp_us in 0u64..u64::MAX / 2,
        node in prop::option::of(0.0f64..10_000.0),
        cpu in prop::collection::vec(0.0f64..1_000.0, 0..4),
        mem in prop::option::of(0.0f64..500.0),
        gpu in prop::collection::vec(0.0f64..600.0, 0..8),
    ) -> NodePowerSample {
        NodePowerSample {
            hostname,
            timestamp_us,
            power_node_watts: node,
            power_cpu_watts: cpu,
            power_mem_watts: mem,
            power_gpu_watts: gpu,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every sample round-trips through the JSON encoding with values
    /// preserved to the writer's 3-decimal precision.
    #[test]
    fn json_round_trip(sample in any_sample()) {
        let json = sample.to_json();
        let parsed = NodePowerSample::from_json(&json).expect("parses");
        prop_assert_eq!(&parsed.hostname, &sample.hostname);
        prop_assert_eq!(parsed.timestamp_us, sample.timestamp_us);
        prop_assert_eq!(parsed.power_cpu_watts.len(), sample.power_cpu_watts.len());
        prop_assert_eq!(parsed.power_gpu_watts.len(), sample.power_gpu_watts.len());
        let close = |a: f64, b: f64| (a - b).abs() < 0.001;
        match (parsed.power_node_watts, sample.power_node_watts) {
            (Some(a), Some(b)) => prop_assert!(close(a, b)),
            (None, None) => {}
            other => prop_assert!(false, "node mismatch {other:?}"),
        }
        for (a, b) in parsed.power_cpu_watts.iter().zip(sample.power_cpu_watts.iter()) {
            prop_assert!(close(*a, *b));
        }
        for (a, b) in parsed.power_gpu_watts.iter().zip(sample.power_gpu_watts.iter()) {
            prop_assert!(close(*a, *b));
        }
    }

    /// The node estimate is the direct value when present, else the
    /// CPU+GPU sum — never negative.
    #[test]
    fn node_estimate_definition(sample in any_sample()) {
        let est = sample.node_power_estimate();
        match sample.power_node_watts {
            Some(w) => prop_assert_eq!(est, w),
            None => {
                let sum = sample.cpu_total() + sample.gpu_total();
                prop_assert!((est - sum).abs() < 1e-9);
            }
        }
        prop_assert!(est >= 0.0);
    }

    /// Encoded size is bounded and grows with device count.
    #[test]
    fn json_size_bounded(sample in any_sample()) {
        let sz = sample.json_size_bytes();
        prop_assert!((30..1024).contains(&sz), "size {sz}");
    }
}
