//! The three Variorum entry points used by the Flux power modules.

use crate::error::VariorumError;
use crate::json::NodePowerSample;
use fluxpm_hw::{CapOutcome, NodeHardware, SensorReadCost, Watts};
use serde::{Deserialize, Serialize};

/// Static power-domain capabilities, as `variorum_get_node_power_domain_info`
/// would report them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerDomainInfo {
    /// Whether a direct node-power dial exists (IBM) or node capping is
    /// best-effort (Intel/AMD).
    pub direct_node_cap: bool,
    /// Whether per-GPU capping is available.
    pub gpu_cap: bool,
    /// Whether capping is enabled for users at all.
    pub capping_enabled: bool,
    /// Node cap settable range, if node capping exists.
    pub node_cap_range: Option<(f64, f64)>,
    /// GPU cap settable range.
    pub gpu_cap_range: (f64, f64),
    /// Number of GPU devices.
    pub num_gpus: usize,
    /// Number of CPU sockets.
    pub num_sockets: usize,
}

/// `variorum_get_node_power_domain_info` — describe what this node's
/// power domains can do.
pub fn get_node_power_domain_info(node: &NodeHardware) -> PowerDomainInfo {
    let c = &node.arch.capping;
    PowerDomainInfo {
        direct_node_cap: c.node_cap,
        gpu_cap: c.gpu_cap,
        capping_enabled: c.user_enabled,
        node_cap_range: c
            .node_cap
            .then(|| (c.min_node_cap.get(), c.max_node_cap.get())),
        gpu_cap_range: (c.min_gpu_cap.get(), c.max_gpu_cap.get()),
        num_gpus: node.arch.gpus,
        num_sockets: node.arch.sockets,
    }
}

/// `variorum_get_node_power_json` — vendor-neutral telemetry.
///
/// Returns the sample plus the host-CPU cost the read incurred; callers
/// that model overhead (the monitor) charge that cost to the co-located
/// application.
pub fn get_node_power_json(
    node: &mut NodeHardware,
    hostname: &str,
    timestamp_us: u64,
) -> (NodePowerSample, SensorReadCost) {
    let cost = node.sensors.read_cost();
    let reading = node.read_sensors();
    (
        NodePowerSample::from_reading(hostname, timestamp_us, &reading),
        cost,
    )
}

/// `variorum_cap_best_effort_node_power_limit` — node-level capping.
///
/// On IBM AC922 this sets the OPAL node cap directly (and OPAL in turn
/// derives conservative GPU caps). On platforms without a node dial,
/// Variorum distributes the budget uniformly across sockets as CPU caps —
/// but on Tioga capping is administratively disabled, so this errors.
///
/// Returns the node cap actually in force (OPAL clamps into its settable
/// range rather than erroring).
pub fn cap_best_effort_node_power_limit(
    node: &mut NodeHardware,
    limit: Watts,
) -> Result<Watts, VariorumError> {
    if limit.get() <= 0.0 {
        return Err(VariorumError::InvalidPowerLimit);
    }
    Ok(node.set_node_cap(limit)?)
}

/// Cap a single GPU (the NVML path the paper's FPP uses for per-GPU,
/// non-uniform capping; Variorum proper exposes the uniform
/// `cap_each_gpu_power_limit`, with device-level dials reached through
/// NVML — modelled here as one call).
pub fn cap_gpu_power_limit(
    node: &mut NodeHardware,
    gpu: usize,
    limit: Watts,
) -> Result<CapOutcome, VariorumError> {
    Ok(node.set_gpu_cap(gpu, limit)?)
}

/// `variorum_cap_each_socket_power_limit` — set the same RAPL-style cap
/// on every CPU socket. This is the dial Variorum drives on Intel/AMD
/// for best-effort node capping, and the one the socket-level FPP
/// variant uses (paper §III-B2: the policy "can be easily extended to be
/// utilized for socket-level or memory-level power capping").
pub fn cap_each_socket_power_limit(
    node: &mut NodeHardware,
    limit: Watts,
) -> Result<Vec<Watts>, VariorumError> {
    if limit.get() <= 0.0 {
        return Err(VariorumError::InvalidPowerLimit);
    }
    let n = node.arch.sockets;
    let mut applied = Vec::with_capacity(n);
    for socket in 0..n {
        applied.push(node.set_socket_cap(socket, limit)?);
    }
    Ok(applied)
}

/// Cap a single CPU socket (the per-device path the socket-level FPP
/// controller uses).
pub fn cap_socket_power_limit(
    node: &mut NodeHardware,
    socket: usize,
    limit: Watts,
) -> Result<Watts, VariorumError> {
    Ok(node.set_socket_cap(socket, limit)?)
}

/// Cap the memory subsystem (DRAM RAPL) — the third device class the
/// paper's FPP names ("socket-level or memory-level power capping").
pub fn cap_memory_power_limit(
    node: &mut NodeHardware,
    limit: Watts,
) -> Result<Watts, VariorumError> {
    if limit.get() <= 0.0 {
        return Err(VariorumError::InvalidPowerLimit);
    }
    Ok(node.set_memory_cap(limit)?)
}

/// `variorum_cap_each_gpu_power_limit` — set the same cap on every GPU.
///
/// Returns the per-GPU outcomes: on Lassen at low node caps, individual
/// GPUs may silently keep a stale cap or reset to the default (paper §V);
/// callers see that here rather than via an error.
pub fn cap_each_gpu_power_limit(
    node: &mut NodeHardware,
    limit: Watts,
) -> Result<Vec<CapOutcome>, VariorumError> {
    let n = node.arch.gpus;
    let mut outcomes = Vec::with_capacity(n);
    for gpu in 0..n {
        outcomes.push(node.set_gpu_cap(gpu, limit)?);
    }
    Ok(outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluxpm_hw::{lassen, tioga, NodeId, PowerDemand, Sensors};

    fn lassen_node() -> NodeHardware {
        let mut n = NodeHardware::new(NodeId(0), lassen(), 42);
        n.sensors = Sensors::new(&n.arch, 0).with_noise(0.0);
        n
    }

    fn busy(node: &mut NodeHardware) {
        let arch = node.arch.clone();
        node.set_demand(PowerDemand {
            cpu: vec![Watts(150.0); arch.sockets],
            memory: Watts(80.0),
            gpu: vec![Watts(260.0); arch.gpus],
            other: arch.other,
        });
    }

    #[test]
    fn telemetry_reports_draw() {
        let mut n = lassen_node();
        busy(&mut n);
        let (sample, cost) = get_node_power_json(&mut n, "lassen0", 4_000_000);
        assert_eq!(sample.hostname, "lassen0");
        assert_eq!(sample.timestamp_us, 4_000_000);
        let expect = n.draw().total().get();
        assert!((sample.node_power_estimate() - expect).abs() < 1e-6);
        assert_eq!(cost.cpu_time.as_micros(), 6_000);
    }

    #[test]
    fn node_cap_applies_and_clamps() {
        let mut n = lassen_node();
        busy(&mut n);
        let set = cap_best_effort_node_power_limit(&mut n, Watts(1200.0)).unwrap();
        assert_eq!(set, Watts(1200.0));
        let draw = n.draw();
        assert!(draw.total().get() <= 1200.0);
        // Below OPAL's soft minimum clamps up.
        let set = cap_best_effort_node_power_limit(&mut n, Watts(100.0)).unwrap();
        assert_eq!(set, Watts(500.0));
    }

    #[test]
    fn non_positive_limit_rejected() {
        let mut n = lassen_node();
        assert_eq!(
            cap_best_effort_node_power_limit(&mut n, Watts(0.0)),
            Err(VariorumError::InvalidPowerLimit)
        );
    }

    #[test]
    fn gpu_caps_apply_uniformly() {
        let mut n = lassen_node();
        busy(&mut n);
        let outcomes = cap_each_gpu_power_limit(&mut n, Watts(150.0)).unwrap();
        assert_eq!(outcomes.len(), 4);
        assert!(outcomes.iter().all(|o| o.succeeded()));
        let draw = n.draw();
        for g in &draw.gpu {
            assert_eq!(*g, Watts(150.0));
        }
    }

    #[test]
    fn tioga_capping_is_disabled() {
        let mut n = NodeHardware::new(NodeId(0), tioga(), 42);
        assert_eq!(
            cap_best_effort_node_power_limit(&mut n, Watts(500.0)),
            Err(VariorumError::FeatureDisabled)
        );
        assert_eq!(
            cap_each_gpu_power_limit(&mut n, Watts(200.0)),
            Err(VariorumError::FeatureDisabled)
        );
    }

    #[test]
    fn tioga_telemetry_still_works() {
        let mut n = NodeHardware::new(NodeId(0), tioga(), 42);
        n.sensors = Sensors::new(&n.arch, 0).with_noise(0.0);
        let (sample, cost) = get_node_power_json(&mut n, "tioga0", 0);
        assert!(sample.power_node_watts.is_none());
        assert_eq!(sample.power_gpu_watts.len(), 4, "per-OAM");
        assert_eq!(cost.cpu_time.as_micros(), 800);
    }

    #[test]
    fn domain_info_matches_arch() {
        let n = lassen_node();
        let info = get_node_power_domain_info(&n);
        assert!(info.direct_node_cap && info.gpu_cap && info.capping_enabled);
        assert_eq!(info.node_cap_range, Some((500.0, 3050.0)));
        assert_eq!(info.gpu_cap_range, (100.0, 300.0));
        assert_eq!(info.num_gpus, 4);

        let t = NodeHardware::new(NodeId(1), tioga(), 0);
        let info = get_node_power_domain_info(&t);
        assert!(!info.direct_node_cap);
        assert!(!info.capping_enabled);
        assert_eq!(info.num_gpus, 8);
        assert_eq!(info.node_cap_range, None);
    }

    #[test]
    fn gpu_cap_out_of_range_errors() {
        let mut n = lassen_node();
        assert_eq!(
            cap_each_gpu_power_limit(&mut n, Watts(50.0)),
            Err(VariorumError::InvalidPowerLimit)
        );
    }
}
