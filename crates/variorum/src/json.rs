//! The Variorum node-power JSON object.
//!
//! Variorum's `variorum_get_node_power_json` returns a flat JSON object
//! whose keys depend on what the platform can measure, e.g. on Lassen:
//!
//! ```json
//! {"hostname": "lassen18", "timestamp_us": 12000000,
//!  "power_node_watts": 981.2,
//!  "power_cpu_watts_socket_0": 151.0, "power_cpu_watts_socket_1": 149.7,
//!  "power_mem_watts": 81.3,
//!  "power_gpu_watts_0": 248.9, ...}
//! ```
//!
//! On Tioga the node and memory keys are absent and GPU keys are per-OAM.
//! `serde_json` is not in the offline dependency set, so this module
//! carries a small hand-rolled writer/parser pair for exactly this flat
//! shape (string values for `hostname`, floats for everything else).

use fluxpm_hw::{SensorReading, Watts};
use serde::{Deserialize, Serialize};

/// A parsed/constructed node power sample (the paper's telemetry record).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodePowerSample {
    /// Node hostname, e.g. `"lassen12"`.
    pub hostname: String,
    /// Sample timestamp, microseconds on the simulation clock.
    pub timestamp_us: u64,
    /// Direct node power, when the platform measures it.
    pub power_node_watts: Option<f64>,
    /// Per-socket CPU power.
    pub power_cpu_watts: Vec<f64>,
    /// Memory power, when measurable.
    pub power_mem_watts: Option<f64>,
    /// GPU power, one entry per reading group (GPU or OAM).
    pub power_gpu_watts: Vec<f64>,
}

impl NodePowerSample {
    /// Build a sample from a sensor scan.
    pub fn from_reading(hostname: &str, timestamp_us: u64, r: &SensorReading) -> NodePowerSample {
        NodePowerSample {
            hostname: hostname.to_owned(),
            timestamp_us,
            power_node_watts: r.node.map(Watts::get),
            power_cpu_watts: r.cpu.iter().map(|w| w.get()).collect(),
            power_mem_watts: r.memory.map(Watts::get),
            power_gpu_watts: r.gpu.iter().map(|w| w.get()).collect(),
        }
    }

    /// The node power a client reports: direct when available, otherwise
    /// the conservative CPU+GPU sum (the Tioga estimate in the paper).
    pub fn node_power_estimate(&self) -> f64 {
        self.power_node_watts.unwrap_or_else(|| {
            self.power_cpu_watts.iter().sum::<f64>() + self.power_gpu_watts.iter().sum::<f64>()
        })
    }

    /// Total GPU power in the sample.
    pub fn gpu_total(&self) -> f64 {
        self.power_gpu_watts.iter().sum()
    }

    /// Total CPU power in the sample.
    pub fn cpu_total(&self) -> f64 {
        self.power_cpu_watts.iter().sum()
    }

    /// Serialize as the flat Variorum JSON object.
    ///
    /// This runs on every sampling tick of every node agent — it is the
    /// single hottest serialization path in the simulator — so it
    /// formats keys and numbers with integer arithmetic straight into
    /// the output buffer instead of going through `format!` (which
    /// allocates per field and takes the slow exact-precision float
    /// path).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push('{');
        push_str_field(&mut out, "hostname", &self.hostname);
        out.push_str("\"timestamp_us\":");
        push_u64(&mut out, self.timestamp_us);
        out.push(',');
        if let Some(w) = self.power_node_watts {
            push_num_field(&mut out, "power_node_watts", w);
        }
        for (i, w) in self.power_cpu_watts.iter().enumerate() {
            push_indexed_num_field(&mut out, "power_cpu_watts_socket_", i, *w);
        }
        if let Some(w) = self.power_mem_watts {
            push_num_field(&mut out, "power_mem_watts", w);
        }
        for (i, w) in self.power_gpu_watts.iter().enumerate() {
            push_indexed_num_field(&mut out, "power_gpu_watts_", i, *w);
        }
        // Drop the trailing comma.
        if out.ends_with(',') {
            out.pop();
        }
        out.push('}');
        out
    }

    /// Parse the flat Variorum JSON object produced by [`Self::to_json`].
    ///
    /// This is a minimal parser for the flat `{"k": v, ...}` shape — not a
    /// general JSON parser. Unknown keys are ignored so the format can
    /// grow.
    pub fn from_json(s: &str) -> Option<NodePowerSample> {
        let body = s.trim().strip_prefix('{')?.strip_suffix('}')?;
        let mut hostname = String::new();
        let mut timestamp_us = 0u64;
        let mut node = None;
        let mut mem = None;
        let mut cpu: Vec<(usize, f64)> = Vec::new();
        let mut gpu: Vec<(usize, f64)> = Vec::new();

        for pair in split_top_level(body) {
            let (k, v) = pair.split_once(':')?;
            let key = k.trim().trim_matches('"');
            let val = v.trim();
            match key {
                "hostname" => hostname = val.trim_matches('"').to_owned(),
                "timestamp_us" => {
                    // Accept both integer (current writer) and float
                    // (older encodings) forms.
                    timestamp_us = match val.parse::<u64>() {
                        Ok(t) => t,
                        Err(_) => val.parse::<f64>().ok()? as u64,
                    }
                }
                "power_node_watts" => node = Some(val.parse().ok()?),
                "power_mem_watts" => mem = Some(val.parse().ok()?),
                _ => {
                    if let Some(idx) = key.strip_prefix("power_cpu_watts_socket_") {
                        cpu.push((idx.parse().ok()?, val.parse().ok()?));
                    } else if let Some(idx) = key.strip_prefix("power_gpu_watts_") {
                        gpu.push((idx.parse().ok()?, val.parse().ok()?));
                    }
                }
            }
        }
        cpu.sort_by_key(|(i, _)| *i);
        gpu.sort_by_key(|(i, _)| *i);
        Some(NodePowerSample {
            hostname,
            timestamp_us,
            power_node_watts: node,
            power_cpu_watts: cpu.into_iter().map(|(_, w)| w).collect(),
            power_mem_watts: mem,
            power_gpu_watts: gpu.into_iter().map(|(_, w)| w).collect(),
        })
    }

    /// Approximate in-memory size of the JSON encoding, used for the
    /// monitor's buffer accounting (the paper sizes its ring buffer as
    /// "100,000 instances of the Variorum JSON object" ≈ 43.4 MB).
    pub fn json_size_bytes(&self) -> usize {
        self.to_json().len()
    }
}

fn push_str_field(out: &mut String, key: &str, val: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":\"");
    out.push_str(val);
    out.push_str("\",");
}

fn push_num_field(out: &mut String, key: &str, val: f64) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    push_fixed3(out, val);
    out.push(',');
}

/// `"{prefix}{index}": {val}` without building the key string on the
/// heap first.
fn push_indexed_num_field(out: &mut String, prefix: &str, index: usize, val: f64) {
    out.push('"');
    out.push_str(prefix);
    push_u64(out, index as u64);
    out.push_str("\":");
    push_fixed3(out, val);
    out.push(',');
}

/// Append a non-negative integer without allocating.
fn push_u64(out: &mut String, mut v: u64) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    out.push_str(std::str::from_utf8(&buf[i..]).expect("ascii digits"));
}

/// Append `val` with exactly three decimal places. Fixed precision
/// keeps records compact and diffable; the integer fast path avoids the
/// standard formatter's exact-precision float machinery on the sampling
/// hot path. Values too large for the scaled-integer representation
/// (and non-finite values) fall back to `{val:.3}`; near round-to-even
/// ties the fast path may differ from the standard formatter by one in
/// the last decimal, which is within the sensor noise floor.
fn push_fixed3(out: &mut String, val: f64) {
    let a = val.abs();
    if !val.is_finite() || a >= 4.0e12 {
        use std::fmt::Write;
        let _ = write!(out, "{val:.3}");
        return;
    }
    if val.is_sign_negative() {
        out.push('-');
    }
    let r = a * 1000.0;
    let mut scaled = r.round() as u64; // rounds ties away from zero
    if r - r.trunc() == 0.5 && scaled % 2 == 1 {
        scaled -= 1; // ties to even, matching the standard formatter
    }
    push_u64(out, scaled / 1000);
    let frac = (scaled % 1000) as u32;
    out.push('.');
    out.push((b'0' + (frac / 100) as u8) as char);
    out.push((b'0' + (frac / 10 % 10) as u8) as char);
    out.push((b'0' + (frac % 10) as u8) as char);
}

/// Split `a:1,b:"x,y"` on commas not inside strings.
fn split_top_level(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth_quote = false;
    let mut start = 0;
    for (i, c) in s.char_indices() {
        match c {
            '"' => depth_quote = !depth_quote,
            ',' if !depth_quote => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < s.len() {
        parts.push(&s[start..]);
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluxpm_hw::{lassen, tioga, NodeHardware, NodeId, PowerDemand, Sensors, Watts};

    fn lassen_sample() -> NodePowerSample {
        let mut n = NodeHardware::new(NodeId(0), lassen(), 1);
        n.sensors = Sensors::new(&n.arch, 0).with_noise(0.0);
        let arch = n.arch.clone();
        n.set_demand(PowerDemand {
            cpu: vec![Watts(150.0); 2],
            memory: Watts(80.0),
            gpu: vec![Watts(250.0); 4],
            other: arch.other,
        });
        let r = n.read_sensors();
        NodePowerSample::from_reading("lassen7", 2_000_000, &r)
    }

    #[test]
    fn lassen_sample_has_all_keys() {
        let s = lassen_sample();
        let json = s.to_json();
        assert!(json.contains("\"hostname\":\"lassen7\""));
        assert!(json.contains("power_node_watts"));
        assert!(json.contains("power_cpu_watts_socket_0"));
        assert!(json.contains("power_cpu_watts_socket_1"));
        assert!(json.contains("power_mem_watts"));
        assert!(json.contains("power_gpu_watts_3"));
    }

    #[test]
    fn tioga_sample_omits_node_and_mem() {
        let mut n = NodeHardware::new(NodeId(0), tioga(), 1);
        n.sensors = Sensors::new(&n.arch, 0).with_noise(0.0);
        let r = n.read_sensors();
        let s = NodePowerSample::from_reading("tioga3", 0, &r);
        let json = s.to_json();
        assert!(!json.contains("power_node_watts"));
        assert!(!json.contains("power_mem_watts"));
        assert!(json.contains("power_gpu_watts_3"), "4 OAM readings");
        assert!(!json.contains("power_gpu_watts_4"));
    }

    #[test]
    fn json_round_trip() {
        let s = lassen_sample();
        let parsed = NodePowerSample::from_json(&s.to_json()).unwrap();
        assert_eq!(parsed.hostname, s.hostname);
        assert_eq!(parsed.timestamp_us, s.timestamp_us);
        assert_eq!(parsed.power_cpu_watts.len(), 2);
        assert_eq!(parsed.power_gpu_watts.len(), 4);
        assert!((parsed.node_power_estimate() - s.node_power_estimate()).abs() < 0.01);
    }

    #[test]
    fn estimate_prefers_direct_measurement() {
        let s = NodePowerSample {
            hostname: "x".into(),
            timestamp_us: 0,
            power_node_watts: Some(1000.0),
            power_cpu_watts: vec![100.0],
            power_mem_watts: None,
            power_gpu_watts: vec![200.0],
        };
        assert_eq!(s.node_power_estimate(), 1000.0);
        let s2 = NodePowerSample {
            power_node_watts: None,
            ..s
        };
        assert_eq!(s2.node_power_estimate(), 300.0);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(NodePowerSample::from_json("not json").is_none());
        assert!(NodePowerSample::from_json("{\"timestamp_us\":abc}").is_none());
    }

    #[test]
    fn parse_ignores_unknown_keys() {
        let json = "{\"hostname\":\"h\",\"timestamp_us\":5,\"future_key\":1.0}";
        let s = NodePowerSample::from_json(json).unwrap();
        assert_eq!(s.hostname, "h");
        assert_eq!(s.timestamp_us, 5);
    }

    #[test]
    fn fixed3_matches_standard_formatter() {
        let mut vals = vec![
            0.0,
            -0.0,
            0.001,
            0.0625,  // exact binary tie at the 3rd decimal: rounds to even
            0.1875,  // exact tie rounding up (187.5 -> 188)
            -0.0625, // sign handled before the tie adjustment
            999.999,
            1000.0,
            981.2,
            4.1e12, // past the integer fast path: standard fallback
            f64::INFINITY,
            f64::NEG_INFINITY,
        ];
        // A pseudo-random sweep over telemetry-scale magnitudes.
        let mut x = 0.000123_f64;
        for i in 0..2000 {
            vals.push(x * (i as f64));
            x = (x * 1.618 + 0.0137) % 3500.0;
        }
        for v in vals {
            let mut fast = String::new();
            push_fixed3(&mut fast, v);
            assert_eq!(fast, format!("{v:.3}"), "value {v:?}");
        }
    }

    #[test]
    fn record_size_is_plausible() {
        // The paper stores 100,000 records in 43.4 MB => ~434 bytes per
        // record (full JSON with more keys than we carry). Ours should be
        // the same order of magnitude.
        let sz = lassen_sample().json_size_bytes();
        assert!((100..600).contains(&sz), "record size {sz}");
    }
}
