//! # fluxpm-variorum — vendor-neutral power telemetry and capping
//!
//! A faithful reproduction of the three Variorum entry points the paper's
//! Flux modules use (§II-C):
//!
//! * [`get_node_power_json`] — vendor-neutral telemetry; returns a
//!   [`NodePowerSample`] mirroring Variorum's JSON object (absent sensors
//!   are simply absent keys, exactly as on Tioga),
//! * [`cap_best_effort_node_power_limit`] — node-level capping; *direct*
//!   on IBM AC922 (OPAL) and *best-effort* (uniform socket distribution)
//!   where no node dial exists,
//! * [`cap_each_gpu_power_limit`] — a uniform cap across the node's GPUs.
//!
//! The real Variorum is a C library; this crate is its Rust-native
//! equivalent over the simulated [`fluxpm_hw::NodeHardware`] substrate.
//! Every call also reports its host-CPU cost so the monitor's overhead
//! model (paper Fig. 3) has a physical basis.

#![warn(missing_docs)]
pub mod api;
pub mod error;
pub mod json;

pub use api::{
    cap_best_effort_node_power_limit, cap_each_gpu_power_limit, cap_each_socket_power_limit,
    cap_gpu_power_limit, cap_memory_power_limit, cap_socket_power_limit,
    get_node_power_domain_info, get_node_power_json,
};
pub use error::VariorumError;
pub use json::NodePowerSample;
