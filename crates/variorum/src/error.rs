//! Variorum error type.

use fluxpm_hw::CapError;
use std::fmt;

/// Errors surfaced by the Variorum API layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VariorumError {
    /// The requested feature does not exist on this architecture
    /// (e.g. node power sensor on Tioga).
    FeatureNotSupported,
    /// The feature exists but is administratively disabled for users
    /// (capping on the Tioga early-access system).
    FeatureDisabled,
    /// A requested power limit is outside the platform's settable range.
    InvalidPowerLimit,
    /// The device index does not exist.
    NoSuchDevice,
}

impl fmt::Display for VariorumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VariorumError::FeatureNotSupported => "feature not supported on this platform",
            VariorumError::FeatureDisabled => "feature disabled on this platform",
            VariorumError::InvalidPowerLimit => "invalid power limit",
            VariorumError::NoSuchDevice => "no such device",
        };
        f.write_str(s)
    }
}

impl std::error::Error for VariorumError {}

impl From<CapError> for VariorumError {
    fn from(e: CapError) -> Self {
        match e {
            CapError::Unsupported => VariorumError::FeatureNotSupported,
            CapError::Disabled => VariorumError::FeatureDisabled,
            CapError::OutOfRange => VariorumError::InvalidPowerLimit,
            CapError::NoSuchDevice => VariorumError::NoSuchDevice,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cap_error_conversion() {
        assert_eq!(
            VariorumError::from(CapError::Unsupported),
            VariorumError::FeatureNotSupported
        );
        assert_eq!(
            VariorumError::from(CapError::Disabled),
            VariorumError::FeatureDisabled
        );
        assert_eq!(
            VariorumError::from(CapError::OutOfRange),
            VariorumError::InvalidPowerLimit
        );
        assert_eq!(
            VariorumError::from(CapError::NoSuchDevice),
            VariorumError::NoSuchDevice
        );
    }

    #[test]
    fn display() {
        assert!(VariorumError::FeatureDisabled
            .to_string()
            .contains("disabled"));
    }
}
