//! Dual-engine cross-check: the optimized slab/d-ary-heap engine must
//! execute any program *identically* to the reference map-based engine
//! ([`fluxpm_sim::BaselineEngine`]) — same events, same instants, same
//! order, same cancel outcomes, same counters. Random programs of
//! one-shots, periodics, nested schedules, mid-run cancels, run-until
//! chunks, and horizons are interpreted against both and the full
//! execution logs compared.

use fluxpm_sim::{BaselineEngine, Engine, SimDuration, SimTime};
use proptest::prelude::*;
use std::ops::ControlFlow;

/// `(fired_at_us, label)` per executed event, plus synthetic probe rows.
type Log = Vec<(u64, u32)>;

#[derive(Debug, Clone)]
enum Op {
    /// One-shot at `at_us`; optionally schedules a nested child
    /// `nested_in_us` after it fires (exercises in-execution scheduling
    /// and past-clamping when the delay is zero).
    Once {
        at_us: u64,
        nested_in_us: Option<u64>,
    },
    /// Periodic from `at_us` every `interval_us`, breaking after
    /// `fires` firings.
    Every {
        at_us: u64,
        interval_us: u64,
        fires: u32,
    },
    /// One-shot at `at_us` that cancels the `target_raw % i`-th created
    /// event (skipped for the first op); logs whether the cancel hit.
    Cancel { at_us: u64, target_raw: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u64..40_000_000, prop::option::of(0u64..3_000_000))
            .prop_map(|(at_us, nested_in_us)| Op::Once { at_us, nested_in_us }),
        1 => (0u64..30_000_000, 1u64..8_000_000, 1u32..5).prop_map(
            |(at_us, interval_us, fires)| Op::Every {
                at_us,
                interval_us,
                fires,
            }
        ),
        1 => (0u64..40_000_000, 0usize..64)
            .prop_map(|(at_us, target_raw)| Op::Cancel { at_us, target_raw }),
    ]
}

/// Expand an interpreter for one engine type. The two engines have
/// structurally identical APIs but closures are typed per-engine, so a
/// generic fn cannot cover both without a unifying trait; a macro keeps
/// the two interpreters textually identical instead.
macro_rules! interpreter {
    ($name:ident, $engine:ty) => {
        fn $name(program: &[Op], horizon_us: Option<u64>, cut_us: u64) -> (Log, u64, usize) {
            let mut eng: $engine = <$engine>::new();
            if let Some(h) = horizon_us {
                eng.set_horizon(SimTime::from_micros(h));
            }
            let mut ids = Vec::new();
            for (i, op) in program.iter().enumerate() {
                let label = i as u32;
                match *op {
                    Op::Once {
                        at_us,
                        nested_in_us,
                    } => {
                        let id =
                            eng.schedule(SimTime::from_micros(at_us), move |w: &mut Log, e| {
                                w.push((e.now().as_micros(), label));
                                if let Some(d) = nested_in_us {
                                    e.schedule_in(
                                        SimDuration::from_micros(d),
                                        move |w: &mut Log, e| {
                                            w.push((e.now().as_micros(), 10_000 + label));
                                        },
                                    );
                                }
                            });
                        ids.push(id);
                    }
                    Op::Every {
                        at_us,
                        interval_us,
                        fires,
                    } => {
                        let mut left = fires;
                        let id = eng.schedule_every(
                            SimTime::from_micros(at_us),
                            SimDuration::from_micros(interval_us),
                            move |w: &mut Log, e| {
                                w.push((e.now().as_micros(), 20_000 + label));
                                left -= 1;
                                if left == 0 {
                                    ControlFlow::Break(())
                                } else {
                                    ControlFlow::Continue(())
                                }
                            },
                        );
                        ids.push(id);
                    }
                    Op::Cancel { at_us, target_raw } => {
                        let target = ids.get(target_raw % i.max(1)).copied();
                        let id =
                            eng.schedule(SimTime::from_micros(at_us), move |w: &mut Log, e| {
                                let hit = target.map(|t| e.cancel(t)).unwrap_or(false);
                                let tag = if hit { 30_000 } else { 40_000 };
                                w.push((e.now().as_micros(), tag + label));
                            });
                        ids.push(id);
                    }
                }
            }
            let mut log = Log::new();
            // Run in two chunks with a probe between them: run_until
            // semantics, live pending counts, and O(1)/O(n)
            // next_event_time must all agree.
            eng.run_until(&mut log, SimTime::from_micros(cut_us));
            log.push((
                eng.next_event_time()
                    .map(SimTime::as_micros)
                    .unwrap_or(u64::MAX),
                50_000 + eng.pending() as u32,
            ));
            eng.run(&mut log);
            (log, eng.executed(), eng.pending())
        }
    };
}

interpreter!(run_new, Engine<Log>);
interpreter!(run_baseline, BaselineEngine<Log>);

proptest! {
    #[test]
    fn engines_execute_identically(
        program in prop::collection::vec(op_strategy(), 1..40),
        horizon_us in prop::option::of(5_000_000u64..60_000_000),
        cut_us in 0u64..45_000_000,
    ) {
        let new = run_new(&program, horizon_us, cut_us);
        let old = run_baseline(&program, horizon_us, cut_us);
        prop_assert_eq!(new, old);
    }
}

/// A dense same-instant pile-up: FIFO among one-shots, periodics
/// keeping their original arming position across re-arms.
#[test]
fn same_instant_pileup_matches_baseline() {
    let program: Vec<Op> = (0..20)
        .map(|i| {
            if i % 4 == 0 {
                Op::Every {
                    at_us: 1_000_000,
                    interval_us: 1_000_000,
                    fires: 4,
                }
            } else {
                Op::Once {
                    at_us: 1_000_000 + (i % 3) * 1_000_000,
                    nested_in_us: Some(0),
                }
            }
        })
        .collect();
    assert_eq!(
        run_new(&program, None, 2_500_000),
        run_baseline(&program, None, 2_500_000)
    );
}
