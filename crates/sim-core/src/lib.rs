//! # fluxpm-sim — deterministic discrete-event simulation engine
//!
//! Every component of the flux-power-rs stack (brokers, power-sampling
//! loops, policy controllers, application progress integrators) runs as an
//! event on a single totally-ordered queue. Determinism is a hard
//! requirement: the paper's experiments must be exactly reproducible from a
//! seed, so the engine
//!
//! * orders events by `(time, sequence-number)` — same-time events fire in
//!   FIFO scheduling order,
//! * uses an owned pseudo-random generator ([`rng::Xoshiro256pp`]) seeded
//!   explicitly, never from the OS, and
//! * models "threads" (e.g. the monitor's sampling thread) as periodic
//!   tasks rather than real OS threads.
//!
//! The engine is generic over a world type `W`; events are closures that
//! receive `&mut W` and the engine itself (to schedule follow-up events).
//!
//! ```
//! use fluxpm_sim::{Engine, SimTime};
//!
//! let mut engine: Engine<Vec<u64>> = Engine::new();
//! engine.schedule(SimTime::from_secs(1), |w, _| w.push(1));
//! engine.schedule(SimTime::from_secs(2), |w, _| w.push(2));
//! let mut world = Vec::new();
//! engine.run(&mut world);
//! assert_eq!(world, vec![1, 2]);
//! ```

#![warn(missing_docs)]
pub mod baseline;
pub mod engine;
pub mod rng;
pub mod sharded;
pub mod time;
pub mod trace;

pub use baseline::{BaselineEngine, BaselineEventId};
pub use engine::{Engine, EventId, Periodic};
pub use rng::{SplitMix64, Xoshiro256pp};
pub use sharded::{Inbound, Outbound, ShardSim, ShardedEngine, ShardedRunStats};
pub use time::{SimDuration, SimTime};
pub use trace::{Trace, TraceEntry, TraceLevel};
