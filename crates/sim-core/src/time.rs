//! Simulated time.
//!
//! Time is tracked in integer microseconds so that event ordering is exact
//! (no floating-point comparison hazards) while still resolving the finest
//! granularity the paper cares about (the IBM OCC samples at 500 µs).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Microseconds per second.
pub const MICROS_PER_SEC: u64 = 1_000_000;

/// An absolute instant on the simulation clock, in microseconds since the
/// start of the simulation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulated time, in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * MICROS_PER_SEC)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Seconds as a float (for plotting / CSV output).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Duration elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * MICROS_PER_SEC)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// The longest representable duration — the saturation bound for
    /// lossy float conversions and for saturating time arithmetic.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from fractional seconds, rounding to the nearest
    /// microsecond. Degenerate inputs saturate instead of wrapping
    /// through the float→int cast: negative values, `-0.0`, and NaN
    /// clamp to [`SimDuration::ZERO`]; values beyond the representable
    /// range (including `+∞`) clamp to [`SimDuration::MAX`].
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs.is_nan() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        let micros = (secs * MICROS_PER_SEC as f64).round();
        if micros >= u64::MAX as f64 {
            return SimDuration::MAX;
        }
        SimDuration(micros as u64)
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// True if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Integer multiple of this duration, saturating at
    /// [`SimDuration::MAX`].
    pub const fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

// Additions saturate at the top of the clock rather than wrapping or
// panicking: a saturated duration (e.g. a degenerate `from_secs_f64`
// input) then pins the instant at the far future — which an ordering
// comparison or horizon check catches — instead of aborting the
// simulation or wrapping back into valid-looking small times.
impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl Sub<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_micros(3).as_micros(), 3);
        assert_eq!(SimDuration::from_secs(2).as_secs_f64(), 2.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10) + SimDuration::from_secs(5);
        assert_eq!(t, SimTime::from_secs(15));
        assert_eq!(t - SimTime::from_secs(10), SimDuration::from_secs(5));
        // Saturating subtraction never underflows.
        assert_eq!(
            SimTime::from_secs(1) - SimTime::from_secs(2),
            SimDuration::ZERO
        );
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(4);
        assert_eq!(b.since(a), SimDuration::from_secs(3));
        assert_eq!(a.since(b), SimDuration::ZERO);
    }

    #[test]
    fn from_secs_f64_rounds_and_clamps() {
        assert_eq!(SimDuration::from_secs_f64(0.5).as_micros(), 500_000);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1e-7).as_micros(), 0);
    }

    #[test]
    fn from_secs_f64_rejects_degenerate_inputs() {
        // NaN slips past a plain `<= 0.0` guard (all NaN comparisons
        // are false) and the raw `as u64` cast would turn it into 0 —
        // or +inf into u64::MAX — silently. Both must clamp instead.
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(-f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(f64::NEG_INFINITY),
            SimDuration::ZERO
        );
        assert_eq!(SimDuration::from_secs_f64(-0.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
        // Values overflowing the microsecond clock saturate at MAX, not
        // at a wrapped small number.
        assert_eq!(SimDuration::from_secs_f64(1e300), SimDuration::MAX);
        assert_eq!(
            SimDuration::from_secs_f64(u64::MAX as f64),
            SimDuration::MAX
        );
        // The largest finite conversions stay monotone.
        let nearly = SimDuration::from_secs_f64(1e13);
        assert!(nearly < SimDuration::MAX);
        assert_eq!(nearly.as_micros(), 1e19 as u64);
    }

    #[test]
    fn saturated_durations_pin_instants_without_wrapping() {
        let t = SimTime::from_secs(10);
        // Adding a saturated duration used to overflow-panic (debug) or
        // wrap (release); now it pins at the far future.
        assert_eq!(t + SimDuration::MAX, SimTime(u64::MAX));
        let mut t2 = SimTime::from_secs(1);
        t2 += SimDuration::MAX;
        assert_eq!(t2, SimTime(u64::MAX));
        assert_eq!(
            SimDuration::MAX + SimDuration::from_secs(1),
            SimDuration::MAX
        );
        assert_eq!(SimDuration::MAX.mul(3), SimDuration::MAX);
    }

    #[test]
    fn ordering_is_by_instant() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimDuration::from_millis(999) < SimDuration::from_secs(1));
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
    }
}
