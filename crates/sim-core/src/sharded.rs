//! Conservative parallel simulation: a coordinator for shard-local
//! engines synchronized by lookahead windows.
//!
//! The single-queue [`Engine`](crate::Engine) executes every event of a
//! simulation on one thread. For fleet-scale scenarios (100k+ ranks)
//! the event volume outgrows one core, but the workloads we simulate
//! have a natural partition: the TBON overlay's links carry a minimum
//! per-hop latency, so an event executing in one subtree cannot affect
//! another subtree sooner than that latency. That bound — the
//! *lookahead* — is exactly the classical conservative-PDES window
//! condition (Chandy/Misra/Bryant): if every cross-shard interaction is
//! delayed by at least `L`, all shards can safely execute the window
//! `[t, t_min + L)` in parallel, where `t_min` is the globally earliest
//! pending event.
//!
//! [`ShardedEngine`] drives that loop:
//!
//! 1. collect each shard's next local event time (and the delivery
//!    times of in-flight boundary messages),
//! 2. compute `window_end = min(next) + lookahead`,
//! 3. hand every shard its inbound boundary messages in a canonical
//!    order and let all shards run local events strictly before
//!    `window_end` on their own worker threads,
//! 4. gather outbound boundary messages at the barrier and repeat.
//!
//! Shard state is **thread-confined, not `Send`**: each shard sim is
//! constructed *inside* its worker thread from a `Send` builder, so
//! `Rc`-based hot-path structures (routes, modules, payloads) never
//! cross threads. Only the boundary messages — plain `Send` envelope
//! values — travel between shards, and only at window barriers.
//!
//! # Determinism contract
//!
//! For a fixed shard count the run is bit-reproducible, and a workload
//! whose cross-shard sends honor the lookahead and whose same-timestamp
//! message folds are commutative produces the *same merged event
//! stream for every shard count* (see `DESIGN.md` §9):
//!
//! * window boundaries derive only from virtual times, never from
//!   wall-clock or thread scheduling;
//! * inbound messages are delivered to each shard sorted by
//!   `(delivery time, source shard, per-source sequence)` — a total
//!   order independent of which worker finished first;
//! * each shard's local execution is a deterministic single-threaded
//!   [`Engine`](crate::Engine) run.
//!
//! The coordinator *verifies* the lookahead contract at runtime: an
//! outbound message whose delivery time lands inside the window that
//! produced it would be a causality violation and panics immediately
//! rather than silently reordering events.

use crate::time::{SimDuration, SimTime};
use std::sync::mpsc::{channel, Receiver, Sender};

/// A boundary message leaving a shard: deliver `msg` to `to_shard` at
/// virtual time `at`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outbound<M> {
    /// Virtual delivery time (must be at or after the end of the
    /// window in which the message was produced).
    pub at: SimTime,
    /// Destination shard index.
    pub to_shard: usize,
    /// The payload crossing the boundary.
    pub msg: M,
}

/// An inbound boundary message as a shard receives it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inbound<M> {
    /// Virtual delivery time.
    pub at: SimTime,
    /// Shard that produced the message.
    pub from_shard: usize,
    /// The payload.
    pub msg: M,
}

/// A shard-local simulation driven by [`ShardedEngine`].
///
/// Implementations typically wrap an [`Engine`](crate::Engine) plus the
/// shard's slice of world state; they are built inside the worker
/// thread and never cross it, so they need not be `Send`.
pub trait ShardSim {
    /// Boundary-message payload exchanged with other shards.
    type Boundary: Send + 'static;
    /// Per-shard result returned to the caller after the run.
    type Output: Send + 'static;

    /// Virtual time of the earliest pending local event, or `None`
    /// when the shard is idle (boundary deliveries may still wake it).
    fn next_time(&self) -> Option<SimTime>;

    /// Enqueue a boundary message for local execution at `msg.at`.
    /// Called only at window barriers, with `msg.at` at or after the
    /// end of the last executed window.
    fn deliver(&mut self, msg: Inbound<Self::Boundary>);

    /// Execute every local event with time strictly before `end`,
    /// pushing any messages bound for other shards into `out`.
    /// Returns the number of events executed (for load stats).
    fn run_window(&mut self, end: SimTime, out: &mut Vec<Outbound<Self::Boundary>>) -> u64;

    /// Consume the shard and produce its result (event stream, stats —
    /// whatever the workload merges).
    fn finish(self) -> Self::Output;
}

/// Aggregate statistics for one sharded run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardedRunStats {
    /// Number of synchronization windows executed.
    pub windows: u64,
    /// Total boundary messages exchanged between shards.
    pub boundary_msgs: u64,
    /// Total events executed across all shards.
    pub events: u64,
    /// Virtual time reached when the run went quiescent.
    pub end_time: SimTime,
}

/// The conservative window coordinator. See the module docs for the
/// protocol and determinism contract.
#[derive(Debug, Clone, Copy)]
pub struct ShardedEngine {
    /// The lookahead window: a lower bound on the virtual latency of
    /// every cross-shard interaction. Must be at least one tick
    /// (1 µs) for the window loop to make progress.
    pub lookahead: SimDuration,
    /// Optional virtual-time horizon: events at or after this instant
    /// are not executed.
    pub horizon: Option<SimTime>,
}

enum Cmd<M> {
    Window {
        end: SimTime,
        inbox: Vec<Inbound<M>>,
    },
    Finish,
}

struct Report<M> {
    outbox: Vec<Outbound<M>>,
    next: Option<SimTime>,
    events: u64,
}

/// An undelivered boundary message held by the coordinator:
/// `(delivery time, source shard, per-source sequence, payload)`.
type PendingMsg<M> = (SimTime, usize, u64, M);

impl ShardedEngine {
    /// A coordinator with the given lookahead and no horizon.
    pub fn new(lookahead: SimDuration) -> ShardedEngine {
        assert!(
            !lookahead.is_zero(),
            "conservative windows need a positive lookahead"
        );
        ShardedEngine {
            lookahead,
            horizon: None,
        }
    }

    /// Stop executing events at or after `t`.
    pub fn with_horizon(mut self, t: SimTime) -> ShardedEngine {
        self.horizon = Some(t);
        self
    }

    /// Run one simulation: `builders[i]` constructs shard `i`'s sim on
    /// its own worker thread; the coordinator synchronizes windows
    /// until every shard is quiescent (or the horizon is reached), then
    /// returns the per-shard outputs in shard order plus run stats.
    pub fn run<S, F>(&self, builders: Vec<F>) -> (Vec<S::Output>, ShardedRunStats)
    where
        S: ShardSim,
        F: FnOnce(usize) -> S + Send,
    {
        let shards = builders.len();
        assert!(shards > 0, "at least one shard");
        let lookahead = self.lookahead;
        let horizon = self.horizon;

        let mut cmd_txs: Vec<Sender<Cmd<S::Boundary>>> = Vec::with_capacity(shards);
        let mut cmd_rxs: Vec<Receiver<Cmd<S::Boundary>>> = Vec::with_capacity(shards);
        let mut rep_txs: Vec<Sender<Report<S::Boundary>>> = Vec::with_capacity(shards);
        let mut rep_rxs: Vec<Receiver<Report<S::Boundary>>> = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (ct, cr) = channel();
            let (rt, rr) = channel();
            cmd_txs.push(ct);
            cmd_rxs.push(cr);
            rep_txs.push(rt);
            rep_rxs.push(rr);
        }
        let (out_tx, out_rx) = channel::<(usize, S::Output)>();

        let mut stats = ShardedRunStats::default();

        std::thread::scope(|scope| {
            for (shard, builder) in builders.into_iter().enumerate() {
                let cmd_rx = cmd_rxs.remove(0);
                let rep_tx = rep_txs.remove(0);
                let out_tx = out_tx.clone();
                scope.spawn(move || {
                    // The sim is built *here*, inside the worker: its
                    // !Send internals never leave this thread.
                    let mut sim = builder(shard);
                    let mut outbox = Vec::new();
                    loop {
                        match cmd_rx.recv().expect("coordinator alive") {
                            Cmd::Window { end, inbox } => {
                                for m in inbox {
                                    sim.deliver(m);
                                }
                                // The bootstrap probe (end = 0) only
                                // collects next-event times; a window
                                // executes events strictly before its
                                // end, so a zero-length one runs none.
                                let events = if end == SimTime::ZERO {
                                    0
                                } else {
                                    sim.run_window(end, &mut outbox)
                                };
                                for o in &outbox {
                                    assert!(
                                        o.at >= end,
                                        "lookahead violation: shard {shard} produced a \
                                         boundary message for t={} inside its window \
                                         (end t={})",
                                        o.at,
                                        end
                                    );
                                    assert!(
                                        o.to_shard != shard,
                                        "shard {shard} routed a boundary message to itself"
                                    );
                                }
                                let report = Report {
                                    outbox: std::mem::take(&mut outbox),
                                    next: sim.next_time(),
                                    events,
                                };
                                rep_tx.send(report).expect("coordinator alive");
                            }
                            Cmd::Finish => {
                                out_tx.send((shard, sim.finish())).expect("caller alive");
                                return;
                            }
                        }
                    }
                });
            }
            drop(out_tx);

            // Coordinator state: each shard's earliest local event (as
            // of its last report) and the undelivered boundary
            // messages per destination, tagged (at, src, seq) so the
            // delivery order is canonical.
            let mut next: Vec<Option<SimTime>> = vec![None; shards];
            let mut pending: Vec<Vec<PendingMsg<S::Boundary>>> =
                (0..shards).map(|_| Vec::new()).collect();
            let mut seq_per_src: Vec<u64> = vec![0; shards];

            // Bootstrap round: an empty zero-length window makes every
            // shard report its initial next-event time.
            for tx in &cmd_txs {
                tx.send(Cmd::Window {
                    end: SimTime::ZERO,
                    inbox: Vec::new(),
                })
                .expect("worker alive");
            }
            for (i, rx) in rep_rxs.iter().enumerate() {
                let r = rx.recv().expect("worker alive");
                assert!(r.outbox.is_empty(), "no sends before t=0");
                next[i] = r.next;
                stats.events += r.events;
            }

            loop {
                // Earliest actionable virtual time across local queues
                // and in-flight boundary messages.
                let t_min = next
                    .iter()
                    .flatten()
                    .copied()
                    .chain(pending.iter().flatten().map(|p| p.0))
                    .min();
                let Some(t_min) = t_min else { break };
                if horizon.is_some_and(|h| t_min >= h) {
                    stats.end_time = h_clamp(horizon, t_min);
                    break;
                }
                let mut end = t_min + lookahead;
                if let Some(h) = horizon {
                    end = end.min(h);
                }

                // Ship each shard its due messages in canonical order.
                for (i, tx) in cmd_txs.iter().enumerate() {
                    let mut inbox_raw = std::mem::take(&mut pending[i]);
                    inbox_raw.sort_by_key(|a| (a.0, a.1, a.2));
                    let inbox = inbox_raw
                        .into_iter()
                        .map(|(at, src, _, msg)| Inbound {
                            at,
                            from_shard: src,
                            msg,
                        })
                        .collect();
                    tx.send(Cmd::Window { end, inbox }).expect("worker alive");
                }
                for (i, rx) in rep_rxs.iter().enumerate() {
                    let r = rx.recv().expect("worker alive");
                    next[i] = r.next;
                    stats.events += r.events;
                    for o in r.outbox {
                        assert!(o.to_shard < shards, "boundary message to unknown shard");
                        stats.boundary_msgs += 1;
                        let seq = seq_per_src[i];
                        seq_per_src[i] += 1;
                        pending[o.to_shard].push((o.at, i, seq, o.msg));
                    }
                }
                stats.windows += 1;
                stats.end_time = end;
            }

            for tx in &cmd_txs {
                tx.send(Cmd::Finish).expect("worker alive");
            }
        });

        let mut outputs: Vec<(usize, S::Output)> = out_rx.iter().collect();
        assert_eq!(outputs.len(), shards, "every shard reports an output");
        outputs.sort_by_key(|(i, _)| *i);
        (outputs.into_iter().map(|(_, o)| o).collect(), stats)
    }
}

fn h_clamp(horizon: Option<SimTime>, t: SimTime) -> SimTime {
    horizon.map_or(t, |h| h.min(t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;

    /// A toy shard: `ranks` counters that ping their peers on other
    /// shards with a fixed latency, recording every execution.
    struct Toy {
        shard: usize,
        shards: usize,
        eng: Engine<ToyWorld>,
        world: ToyWorld,
    }

    #[derive(Default)]
    struct ToyWorld {
        log: Vec<(u64, usize, u64)>, // (time_us, from_shard, value)
        outbox: Vec<Outbound<u64>>,
    }

    const LAT: u64 = 50;

    impl Toy {
        fn new(shard: usize, shards: usize) -> Toy {
            let mut eng = Engine::new();
            // Each shard emits 5 values at t = 10, 20, 30, 40, 50 and
            // forwards each to the next shard (delivery +50 µs).
            for k in 1..=5u64 {
                let at = SimTime::from_micros(10 * k);
                eng.schedule(at, move |w: &mut ToyWorld, eng| {
                    let v = k * 100;
                    w.log.push((eng.now().as_micros(), usize::MAX, v));
                    w.outbox.push(Outbound {
                        at: eng.now() + SimDuration::from_micros(LAT),
                        to_shard: 0, // patched in run_window
                        msg: v,
                    });
                });
            }
            Toy {
                shard,
                shards,
                eng,
                world: ToyWorld::default(),
            }
        }
    }

    impl ShardSim for Toy {
        type Boundary = u64;
        type Output = Vec<(u64, usize, u64)>;

        fn next_time(&self) -> Option<SimTime> {
            self.eng.next_event_time()
        }

        fn deliver(&mut self, msg: Inbound<u64>) {
            let from = msg.from_shard;
            let v = msg.msg;
            self.eng.schedule(msg.at, move |w: &mut ToyWorld, eng| {
                w.log.push((eng.now().as_micros(), from, v));
            });
        }

        fn run_window(&mut self, end: SimTime, out: &mut Vec<Outbound<u64>>) -> u64 {
            let before = self.eng.executed();
            self.eng
                .run_until(&mut self.world, SimTime(end.as_micros().saturating_sub(1)));
            let to = (self.shard + 1) % self.shards;
            for mut o in self.world.outbox.drain(..) {
                if to == self.shard {
                    continue; // single shard: nothing crosses
                }
                o.to_shard = to;
                out.push(o);
            }
            self.eng.executed() - before
        }

        fn finish(self) -> Vec<(u64, usize, u64)> {
            self.world.log
        }
    }

    type ToyLog = Vec<(u64, usize, u64)>;

    fn run(shards: usize) -> (Vec<ToyLog>, ShardedRunStats) {
        let eng = ShardedEngine::new(SimDuration::from_micros(LAT));
        let builders: Vec<_> = (0..shards)
            .map(|_| move |shard| Toy::new(shard, shards))
            .collect();
        eng.run::<Toy, _>(builders)
    }

    #[test]
    fn single_shard_runs_to_quiescence() {
        let (outs, stats) = run(1);
        assert_eq!(outs.len(), 1);
        // 5 local emissions, no boundary traffic.
        assert_eq!(outs[0].len(), 5);
        assert_eq!(stats.boundary_msgs, 0);
        assert!(stats.windows >= 1);
    }

    #[test]
    fn boundary_messages_arrive_in_timestamp_order() {
        let (outs, stats) = run(3);
        assert_eq!(stats.boundary_msgs, 15, "5 sends from each of 3 shards");
        for log in &outs {
            // 5 local + 5 received.
            assert_eq!(log.len(), 10);
            let mut last = 0;
            for &(t, _, _) in log {
                assert!(t >= last, "per-shard log is time-ordered");
                last = t;
            }
            // Every received value arrives exactly LAT after its send.
            for &(t, from, v) in log.iter().filter(|(_, f, _)| *f != usize::MAX) {
                assert_eq!(t, (v / 100) * 10 + LAT);
                assert_ne!(from, usize::MAX);
            }
        }
    }

    #[test]
    fn fixed_shard_count_is_reproducible() {
        let a = run(4);
        let b = run(4);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn horizon_cuts_the_run_short() {
        let eng = ShardedEngine::new(SimDuration::from_micros(LAT))
            .with_horizon(SimTime::from_micros(35));
        let builders: Vec<_> = (0..2).map(|_| move |shard| Toy::new(shard, 2)).collect();
        let (outs, _) = eng.run::<Toy, _>(builders);
        for log in &outs {
            assert!(log.iter().all(|&(t, _, _)| t < 35));
            // Only the t=10,20,30 local emissions fit; no deliveries
            // (earliest at t=60).
            assert_eq!(log.len(), 3);
        }
    }

    #[test]
    #[should_panic(expected = "positive lookahead")]
    fn zero_lookahead_is_rejected() {
        let _ = ShardedEngine::new(SimDuration::ZERO);
    }
}
