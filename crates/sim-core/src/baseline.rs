//! The original event engine, kept as a reference implementation.
//!
//! This is the pre-optimization queue: a `BinaryHeap` of `(time, seq)`
//! keys with event bodies in a `HashMap` and lazy deletion at pop time.
//! It stays in the tree for two reasons:
//!
//! * the determinism regression suite runs the same seeded workload
//!   through both engines and asserts identical execution traces, so
//!   any ordering change in the optimized engine is caught against
//!   this one rather than against a frozen text file only;
//! * the benchmark suite measures the optimized engine's speedup
//!   against it live, on the same seeds, instead of trusting a number
//!   recorded once.
//!
//! Semantics are identical to [`crate::Engine`] by construction; see
//! the cross-check tests in `tests/engine_equivalence.rs`.

use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::ops::ControlFlow;

/// Opaque handle to a scheduled event; used for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BaselineEventId(u64);

type OnceFn<W> = Box<dyn FnOnce(&mut W, &mut BaselineEngine<W>)>;
type PeriodicFn<W> = Box<dyn FnMut(&mut W, &mut BaselineEngine<W>) -> ControlFlow<()>>;

enum EventBody<W> {
    Once(OnceFn<W>),
    Every {
        interval: SimDuration,
        f: PeriodicFn<W>,
    },
}

/// The reference discrete-event engine (binary heap + body map with
/// lazy deletion). See the module docs for why it is kept.
pub struct BaselineEngine<W> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<(SimTime, u64)>>,
    bodies: HashMap<u64, EventBody<W>>,
    executed: u64,
    horizon: Option<SimTime>,
}

impl<W> Default for BaselineEngine<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> BaselineEngine<W> {
    /// Create an empty engine with the clock at zero.
    pub fn new() -> Self {
        BaselineEngine {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            bodies: HashMap::new(),
            executed: 0,
            horizon: None,
        }
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.bodies.len()
    }

    /// Set a hard horizon: `run` stops once the next event would fire
    /// strictly after this instant.
    pub fn set_horizon(&mut self, t: SimTime) {
        self.horizon = Some(t);
    }

    /// Schedule `f` to run at the absolute instant `at`. Scheduling in
    /// the past is clamped to "now".
    pub fn schedule(
        &mut self,
        at: SimTime,
        f: impl FnOnce(&mut W, &mut BaselineEngine<W>) + 'static,
    ) -> BaselineEventId {
        let at = at.max(self.now);
        let id = self.seq;
        self.seq += 1;
        self.queue.push(Reverse((at, id)));
        self.bodies.insert(id, EventBody::Once(Box::new(f)));
        BaselineEventId(id)
    }

    /// Schedule `f` to run after the given delay.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        f: impl FnOnce(&mut W, &mut BaselineEngine<W>) + 'static,
    ) -> BaselineEventId {
        self.schedule(self.now + delay, f)
    }

    /// Schedule a periodic task: first firing at `start`, then every
    /// `interval` until the closure returns `ControlFlow::Break` or the
    /// task is cancelled.
    pub fn schedule_every(
        &mut self,
        start: SimTime,
        interval: SimDuration,
        f: impl FnMut(&mut W, &mut BaselineEngine<W>) -> ControlFlow<()> + 'static,
    ) -> BaselineEventId {
        assert!(!interval.is_zero(), "periodic interval must be > 0");
        let at = start.max(self.now);
        let id = self.seq;
        self.seq += 1;
        self.queue.push(Reverse((at, id)));
        self.bodies.insert(
            id,
            EventBody::Every {
                interval,
                f: Box::new(f),
            },
        );
        BaselineEventId(id)
    }

    /// Cancel a pending event. Returns true if the event existed and
    /// had not fired.
    pub fn cancel(&mut self, id: BaselineEventId) -> bool {
        self.bodies.remove(&id.0).is_some()
    }

    /// Execute the single next event, if any.
    pub fn step(&mut self, world: &mut W) -> Option<SimTime> {
        loop {
            let Reverse((at, id)) = self.queue.pop()?;
            let Some(body) = self.bodies.remove(&id) else {
                continue; // lazily-deleted (cancelled) entry
            };
            if let Some(h) = self.horizon {
                if at > h {
                    self.queue.clear();
                    self.bodies.clear();
                    return None;
                }
            }
            debug_assert!(at >= self.now, "time must be monotone");
            self.now = at;
            self.executed += 1;
            match body {
                EventBody::Once(f) => f(world, self),
                EventBody::Every { interval, mut f } => {
                    if f(world, self).is_continue() {
                        // Re-arm under the same id: the original
                        // sequence number stays the tie-breaker.
                        self.queue.push(Reverse((at + interval, id)));
                        self.bodies.insert(id, EventBody::Every { interval, f });
                    }
                }
            }
            return Some(at);
        }
    }

    /// Run until the queue drains (or the horizon is reached).
    pub fn run(&mut self, world: &mut W) -> SimTime {
        while self.step(world).is_some() {}
        self.now
    }

    /// Run until the given instant (inclusive); later events stay
    /// queued and the clock advances to `until`.
    ///
    /// Guarded by `next_event_time`, not a raw heap peek: a
    /// lazily-deleted entry before the cutoff must not trick `step`
    /// into executing a live event *past* it. (The shipped map-based
    /// engine had exactly that bug; no production code path ever called
    /// `run_until` with pending cancels, and the cross-check suite
    /// requires the corrected semantics on both sides.)
    pub fn run_until(&mut self, world: &mut W, until: SimTime) -> SimTime {
        while self.next_event_time().is_some_and(|t| t <= until) {
            self.step(world);
        }
        self.now = self.now.max(until);
        self.now
    }

    /// Instant of the next pending event, if any. O(n): scans past
    /// lazily-deleted entries — this is one of the costs the optimized
    /// engine removes.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.queue
            .iter()
            .map(|Reverse((t, id))| (*t, *id))
            .filter(|(_, id)| self.bodies.contains_key(id))
            .map(|(t, _)| t)
            .min()
    }
}
