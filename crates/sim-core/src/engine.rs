//! The event engine.
//!
//! A binary heap keyed by `(SimTime, sequence)` gives total order with FIFO
//! tie-breaking: two events scheduled for the same instant fire in the
//! order they were scheduled, which keeps broker message handling
//! deterministic. Event bodies live in a slab map so events can be
//! cancelled in O(log n) amortized (lazy deletion at pop time).

use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::ops::ControlFlow;

/// Opaque handle to a scheduled event; used for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

/// A one-shot event body.
type OnceFn<W> = Box<dyn FnOnce(&mut W, &mut Engine<W>)>;

/// A repeating event body. Return `ControlFlow::Break(())` to stop the
/// periodic task.
pub type Periodic<W> = Box<dyn FnMut(&mut W, &mut Engine<W>) -> ControlFlow<()>>;

enum EventBody<W> {
    Once(OnceFn<W>),
    Every {
        interval: SimDuration,
        f: Periodic<W>,
    },
}

/// The discrete-event engine. Generic over the world type `W` that events
/// mutate.
pub struct Engine<W> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<(SimTime, u64)>>,
    bodies: HashMap<u64, EventBody<W>>,
    /// Total events executed (for diagnostics / ablation benches).
    executed: u64,
    /// Hard stop; events scheduled after this instant are dropped at pop.
    horizon: Option<SimTime>,
}

impl<W> Default for Engine<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Engine<W> {
    /// Create an empty engine with the clock at zero.
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            bodies: HashMap::new(),
            executed: 0,
            horizon: None,
        }
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending (including cancelled-but-unpopped).
    pub fn pending(&self) -> usize {
        self.bodies.len()
    }

    /// Set a hard horizon: `run` stops once the next event would fire
    /// strictly after this instant.
    pub fn set_horizon(&mut self, t: SimTime) {
        self.horizon = Some(t);
    }

    /// Schedule `f` to run at the absolute instant `at`. Scheduling in the
    /// past is clamped to "now" (fires before any later event).
    pub fn schedule(
        &mut self,
        at: SimTime,
        f: impl FnOnce(&mut W, &mut Engine<W>) + 'static,
    ) -> EventId {
        let at = at.max(self.now);
        let id = self.seq;
        self.seq += 1;
        self.queue.push(Reverse((at, id)));
        self.bodies.insert(id, EventBody::Once(Box::new(f)));
        EventId(id)
    }

    /// Schedule `f` to run after the given delay.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        f: impl FnOnce(&mut W, &mut Engine<W>) + 'static,
    ) -> EventId {
        self.schedule(self.now + delay, f)
    }

    /// Schedule a periodic task: first firing at `start`, then every
    /// `interval` until the closure returns `ControlFlow::Break` or the
    /// task is cancelled. A zero interval is rejected (it would livelock).
    pub fn schedule_every(
        &mut self,
        start: SimTime,
        interval: SimDuration,
        f: impl FnMut(&mut W, &mut Engine<W>) -> ControlFlow<()> + 'static,
    ) -> EventId {
        assert!(!interval.is_zero(), "periodic interval must be > 0");
        let at = start.max(self.now);
        let id = self.seq;
        self.seq += 1;
        self.queue.push(Reverse((at, id)));
        self.bodies.insert(
            id,
            EventBody::Every {
                interval,
                f: Box::new(f),
            },
        );
        EventId(id)
    }

    /// Cancel a pending event. Returns true if the event existed and had
    /// not fired (for periodic tasks: stops all future firings).
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.bodies.remove(&id.0).is_some()
    }

    /// Execute the single next event, if any. Returns the instant it fired.
    pub fn step(&mut self, world: &mut W) -> Option<SimTime> {
        loop {
            let Reverse((at, id)) = self.queue.pop()?;
            let Some(body) = self.bodies.remove(&id) else {
                continue; // lazily-deleted (cancelled) entry
            };
            if let Some(h) = self.horizon {
                if at > h {
                    // Past the horizon: drop this and everything later.
                    self.queue.clear();
                    self.bodies.clear();
                    return None;
                }
            }
            debug_assert!(at >= self.now, "time must be monotone");
            self.now = at;
            self.executed += 1;
            match body {
                EventBody::Once(f) => f(world, self),
                EventBody::Every { interval, mut f } => {
                    if f(world, self).is_continue() {
                        // Re-arm under the same id so `cancel` keeps working.
                        self.queue.push(Reverse((at + interval, id)));
                        self.bodies.insert(id, EventBody::Every { interval, f });
                    }
                }
            }
            return Some(at);
        }
    }

    /// Run until the queue drains (or the horizon is reached).
    pub fn run(&mut self, world: &mut W) -> SimTime {
        while self.step(world).is_some() {}
        self.now
    }

    /// Run until the given instant (inclusive); later events stay queued.
    pub fn run_until(&mut self, world: &mut W, until: SimTime) -> SimTime {
        loop {
            match self.queue.peek() {
                Some(Reverse((at, _))) if *at <= until => {
                    self.step(world);
                }
                _ => break,
            }
        }
        self.now = self
            .now
            .max(until.min(self.next_event_time().unwrap_or(until)));
        self.now
    }

    /// Instant of the next pending event, if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        // The heap may hold cancelled ids; scan past them without popping
        // would be O(n). Cheap approximation: peek, and if cancelled, pop
        // lazily.
        self.queue
            .iter()
            .map(|Reverse((t, id))| (*t, *id))
            .filter(|(_, id)| self.bodies.contains_key(id))
            .map(|(t, _)| t)
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type World = Vec<(u64, &'static str)>;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut eng: Engine<World> = Engine::new();
        eng.schedule(t(3), |w, e| w.push((e.now().as_micros(), "c")));
        eng.schedule(t(1), |w, e| w.push((e.now().as_micros(), "a")));
        eng.schedule(t(2), |w, e| w.push((e.now().as_micros(), "b")));
        let mut w = Vec::new();
        eng.run(&mut w);
        let labels: Vec<_> = w.iter().map(|(_, l)| *l).collect();
        assert_eq!(labels, vec!["a", "b", "c"]);
    }

    #[test]
    fn same_time_events_fire_fifo() {
        let mut eng: Engine<World> = Engine::new();
        for label in ["first", "second", "third"] {
            eng.schedule(t(5), move |w, _| w.push((0, label)));
        }
        let mut w = Vec::new();
        eng.run(&mut w);
        let labels: Vec<_> = w.iter().map(|(_, l)| *l).collect();
        assert_eq!(labels, vec!["first", "second", "third"]);
    }

    #[test]
    fn scheduling_in_past_clamps_to_now() {
        let mut eng: Engine<World> = Engine::new();
        eng.schedule(t(10), |w, e| {
            e.schedule(t(1), |w, e| {
                assert_eq!(e.now(), t(10));
                w.push((0, "clamped"));
            });
            w.push((0, "outer"));
        });
        let mut w = Vec::new();
        eng.run(&mut w);
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn nested_scheduling_from_events() {
        let mut eng: Engine<World> = Engine::new();
        eng.schedule(t(1), |_, e| {
            e.schedule_in(SimDuration::from_secs(2), |w, e| {
                assert_eq!(e.now(), t(3));
                w.push((e.now().as_micros(), "nested"));
            });
        });
        let mut w = Vec::new();
        let end = eng.run(&mut w);
        assert_eq!(end, t(3));
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn cancel_prevents_execution() {
        let mut eng: Engine<World> = Engine::new();
        let id = eng.schedule(t(1), |w, _| w.push((0, "no")));
        assert!(eng.cancel(id));
        assert!(!eng.cancel(id), "double-cancel is a no-op");
        let mut w = Vec::new();
        eng.run(&mut w);
        assert!(w.is_empty());
    }

    #[test]
    fn periodic_fires_until_break() {
        let mut eng: Engine<Vec<u64>> = Engine::new();
        let mut count = 0;
        eng.schedule_every(t(0), SimDuration::from_secs(2), move |w, e| {
            count += 1;
            w.push(e.now().as_micros());
            if count == 4 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        let mut w = Vec::new();
        eng.run(&mut w);
        assert_eq!(
            w,
            vec![0, 2_000_000, 4_000_000, 6_000_000],
            "fires at 0,2,4,6s then stops"
        );
    }

    #[test]
    fn periodic_can_be_cancelled_externally() {
        let mut eng: Engine<Vec<u64>> = Engine::new();
        let id = eng.schedule_every(t(0), SimDuration::from_secs(1), |w, e| {
            w.push(e.now().as_micros());
            ControlFlow::Continue(())
        });
        eng.schedule(t(3), move |_, e| {
            e.cancel(id);
        });
        let mut w = Vec::new();
        eng.run(&mut w);
        // Fires at 0,1,2,3 — the cancel event at t=3 was scheduled after
        // the periodic task, so the periodic firing at t=3 happens first.
        assert_eq!(w.len(), 4);
    }

    #[test]
    fn run_until_leaves_later_events_queued() {
        let mut eng: Engine<Vec<u64>> = Engine::new();
        eng.schedule(t(1), |w, _| w.push(1));
        eng.schedule(t(5), |w, _| w.push(5));
        let mut w = Vec::new();
        eng.run_until(&mut w, t(3));
        assert_eq!(w, vec![1]);
        assert_eq!(eng.pending(), 1);
        eng.run(&mut w);
        assert_eq!(w, vec![1, 5]);
    }

    #[test]
    fn horizon_stops_execution() {
        let mut eng: Engine<Vec<u64>> = Engine::new();
        eng.set_horizon(t(2));
        eng.schedule(t(1), |w, _| w.push(1));
        eng.schedule(t(3), |w, _| w.push(3));
        let mut w = Vec::new();
        eng.run(&mut w);
        assert_eq!(w, vec![1]);
    }

    #[test]
    fn executed_counter() {
        let mut eng: Engine<Vec<u64>> = Engine::new();
        for s in 0..10 {
            eng.schedule(t(s), |_, _| {});
        }
        let mut w = Vec::new();
        eng.run(&mut w);
        assert_eq!(eng.executed(), 10);
    }

    #[test]
    #[should_panic(expected = "periodic interval must be > 0")]
    fn zero_interval_rejected() {
        let mut eng: Engine<Vec<u64>> = Engine::new();
        eng.schedule_every(t(0), SimDuration::ZERO, |_, _| ControlFlow::Continue(()));
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn next_event_time_skips_cancelled() {
        let mut eng: Engine<Vec<u64>> = Engine::new();
        let early = eng.schedule(t(1), |_, _| {});
        eng.schedule(t(5), |_, _| {});
        assert_eq!(eng.next_event_time(), Some(t(1)));
        eng.cancel(early);
        assert_eq!(eng.next_event_time(), Some(t(5)));
    }

    #[test]
    fn next_event_time_empty() {
        let eng: Engine<Vec<u64>> = Engine::new();
        assert_eq!(eng.next_event_time(), None);
    }

    #[test]
    fn periodic_self_cancel_via_break_frees_slot() {
        let mut eng: Engine<u64> = Engine::new();
        let id = eng.schedule_every(t(0), SimDuration::from_secs(1), |w, _| {
            *w += 1;
            ControlFlow::Break(())
        });
        let mut w = 0u64;
        eng.run(&mut w);
        assert_eq!(w, 1);
        assert!(!eng.cancel(id), "task already gone after Break");
        assert_eq!(eng.pending(), 0);
    }

    #[test]
    fn events_scheduled_during_run_until_respect_cutoff() {
        let mut eng: Engine<Vec<u64>> = Engine::new();
        eng.schedule(t(1), |w, e| {
            w.push(1);
            e.schedule(t(2), |w, _| w.push(2));
            e.schedule(t(10), |w, _| w.push(10));
        });
        let mut w = Vec::new();
        eng.run_until(&mut w, t(5));
        assert_eq!(w, vec![1, 2], "the t=10 event waits");
        eng.run(&mut w);
        assert_eq!(w, vec![1, 2, 10]);
    }

    #[test]
    fn interleaved_oneshot_and_periodic_order() {
        let mut eng: Engine<Vec<&'static str>> = Engine::new();
        eng.schedule_every(t(2), SimDuration::from_secs(2), |w, e| {
            w.push("periodic");
            if e.now() >= t(6) {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        eng.schedule(t(3), |w, _| w.push("oneshot"));
        let mut w = Vec::new();
        eng.run(&mut w);
        assert_eq!(w, vec!["periodic", "oneshot", "periodic", "periodic"]);
    }
}
