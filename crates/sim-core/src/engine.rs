//! The event engine.
//!
//! Total order is `(SimTime, key, sequence)`: two events scheduled for
//! the same instant fire in ordering-key order, then in the order they
//! were scheduled, which keeps broker message handling deterministic.
//! Every plain `schedule`/`schedule_every` call uses key 0, so for
//! ordinary workloads the order is exactly the classic
//! `(time, schedule order)`. [`Engine::schedule_keyed`] exists for
//! partitioned simulations that need a *partition-invariant* order
//! among same-instant events: a sharded run can tag message deliveries
//! with a canonical key (e.g. origin rank and per-origin sequence) so
//! the execution order at any instant is the same no matter which
//! shard scheduled the event, while key-0 events (timers, periodic
//! tasks) always run first. A periodic task keeps its *original*
//! sequence number across re-arms, so its position among same-instant
//! events never drifts — these properties are what make seeded runs
//! replay byte-for-byte.
//!
//! ## Hot-path layout
//!
//! Event bodies live in a generation-tagged slab (a `Vec` of slots
//! threaded with an intrusive free list): scheduling reuses freed slots
//! instead of rehashing into a map, and an [`EventId`] packs the slot
//! index with the slot's generation so a stale handle can never cancel
//! the slot's next tenant.
//!
//! The queue is an indexed 4-ary min-heap over `(time, seq)` with a
//! back-pointer from each slot to its heap position. Cancellation
//! removes the entry *eagerly* in O(log n), so — unlike the lazy-
//! deletion design this replaces (kept as
//! [`crate::baseline::BaselineEngine`]) — the heap never carries dead
//! entries: [`Engine::next_event_time`] is an O(1) root peek instead of
//! an O(n) scan, and [`Engine::pending`] counts exactly the live
//! events. A 4-ary layout trades slightly more comparisons per level
//! for half the depth and better cache behavior than a binary heap;
//! steady-state operation allocates nothing beyond the boxed closures
//! themselves.

use crate::time::{SimDuration, SimTime};
use std::ops::ControlFlow;

/// Opaque handle to a scheduled event; used for cancellation.
///
/// Packs the slab slot index (low 32 bits) with the slot's generation
/// (high 32 bits): a handle kept across the event's execution or
/// cancellation goes stale rather than aliasing whatever event reuses
/// the slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

impl EventId {
    fn pack(generation: u32, index: u32) -> Self {
        EventId((u64::from(generation) << 32) | u64::from(index))
    }

    fn unpack(self) -> (u32, u32) {
        ((self.0 >> 32) as u32, self.0 as u32)
    }
}

/// A one-shot event body.
type OnceFn<W> = Box<dyn FnOnce(&mut W, &mut Engine<W>)>;

/// A repeating event body. Return `ControlFlow::Break(())` to stop the
/// periodic task.
pub type Periodic<W> = Box<dyn FnMut(&mut W, &mut Engine<W>) -> ControlFlow<()>>;

/// Heap arity. Children of `i` are `4i + 1 ..= 4i + 4`.
const D: usize = 4;
/// Free-list / back-pointer sentinel.
const NONE: u32 = u32::MAX;

enum SlotState<W> {
    /// On the free list; `next` is the next free slot (or [`NONE`]).
    Free { next: u32 },
    /// Queued one-shot.
    Once(OnceFn<W>),
    /// Queued periodic task.
    Every {
        interval: SimDuration,
        f: Periodic<W>,
    },
    /// Body taken out while its callback runs (periodic tasks only);
    /// the slot stays reserved so events scheduled *by* the callback
    /// cannot reuse it before the re-arm.
    Running,
}

struct Slot<W> {
    /// Bumped every time the slot is freed; part of the [`EventId`].
    generation: u32,
    /// Primary same-instant tie-breaker (0 for plain schedules), fixed
    /// at schedule time for the lifetime of the event.
    key: u64,
    /// Ordering tie-breaker, fixed at schedule time for the lifetime of
    /// the event (periodic re-arms keep it).
    seq: u64,
    /// Position in `heap` while queued, [`NONE`] otherwise.
    heap_pos: u32,
    state: SlotState<W>,
}

#[derive(Clone, Copy)]
struct HeapEntry {
    at: SimTime,
    key: u64,
    seq: u64,
    slot: u32,
}

impl HeapEntry {
    #[inline]
    fn key(&self) -> (SimTime, u64, u64) {
        (self.at, self.key, self.seq)
    }
}

/// The discrete-event engine. Generic over the world type `W` that
/// events mutate.
pub struct Engine<W> {
    now: SimTime,
    seq: u64,
    heap: Vec<HeapEntry>,
    slots: Vec<Slot<W>>,
    free_head: u32,
    /// Total events executed (for diagnostics / ablation benches).
    executed: u64,
    /// Hard stop; events scheduled after this instant are dropped at pop.
    horizon: Option<SimTime>,
    /// Bumped when the horizon clears the queue mid-step, so a periodic
    /// re-arm unwinding through a nested `run` does not write into a
    /// recycled slab.
    clear_epoch: u64,
}

impl<W> Default for Engine<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Engine<W> {
    /// Create an empty engine with the clock at zero.
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            seq: 0,
            heap: Vec::new(),
            slots: Vec::new(),
            free_head: NONE,
            executed: 0,
            horizon: None,
            clear_epoch: 0,
        }
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of live pending events. Cancelled events leave the queue
    /// immediately and are never counted.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Set a hard horizon: `run` stops once the next event would fire
    /// strictly after this instant.
    pub fn set_horizon(&mut self, t: SimTime) {
        self.horizon = Some(t);
    }

    /// Instant of the next pending event, if any. O(1): the heap never
    /// holds cancelled entries, so the root is always live.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.heap.first().map(|e| e.at)
    }

    /// Schedule `f` to run at the absolute instant `at`. Scheduling in the
    /// past is clamped to "now" (fires before any later event).
    pub fn schedule(
        &mut self,
        at: SimTime,
        f: impl FnOnce(&mut W, &mut Engine<W>) + 'static,
    ) -> EventId {
        self.schedule_keyed(at, 0, f)
    }

    /// Schedule `f` at `at` with an explicit same-instant ordering key.
    /// Among events at one instant, lower keys fire first; equal keys
    /// fall back to schedule order. Plain [`Engine::schedule`] uses
    /// key 0, so keyed events with nonzero keys run *after* every
    /// same-instant plain event. Sharded runs use this to impose a
    /// partition-invariant delivery order (see the module docs).
    pub fn schedule_keyed(
        &mut self,
        at: SimTime,
        key: u64,
        f: impl FnOnce(&mut W, &mut Engine<W>) + 'static,
    ) -> EventId {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        let idx = self.alloc(key, seq, SlotState::Once(Box::new(f)));
        self.heap_push(at, key, seq, idx);
        EventId::pack(self.slots[idx as usize].generation, idx)
    }

    /// Schedule `f` to run after the given delay.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        f: impl FnOnce(&mut W, &mut Engine<W>) + 'static,
    ) -> EventId {
        self.schedule(self.now + delay, f)
    }

    /// Schedule a periodic task: first firing at `start`, then every
    /// `interval` until the closure returns `ControlFlow::Break` or the
    /// task is cancelled. A zero interval is rejected (it would livelock).
    pub fn schedule_every(
        &mut self,
        start: SimTime,
        interval: SimDuration,
        f: impl FnMut(&mut W, &mut Engine<W>) -> ControlFlow<()> + 'static,
    ) -> EventId {
        assert!(!interval.is_zero(), "periodic interval must be > 0");
        let at = start.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        let idx = self.alloc(
            0,
            seq,
            SlotState::Every {
                interval,
                f: Box::new(f),
            },
        );
        self.heap_push(at, 0, seq, idx);
        EventId::pack(self.slots[idx as usize].generation, idx)
    }

    /// Cancel a pending event. Returns true if the event existed and had
    /// not fired (for periodic tasks: stops all future firings). The
    /// queue entry is removed eagerly; stale or double cancels are
    /// no-ops.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let (generation, idx) = id.unpack();
        let Some(slot) = self.slots.get(idx as usize) else {
            return false;
        };
        if slot.generation != generation {
            return false;
        }
        match slot.state {
            // A periodic task cancelling itself from its own callback
            // matches the map-based engine: the body is already out of
            // the table, so the cancel misses and the re-arm stands.
            SlotState::Free { .. } | SlotState::Running => false,
            SlotState::Once(_) | SlotState::Every { .. } => {
                let pos = slot.heap_pos;
                debug_assert!(pos != NONE);
                self.heap_remove(pos as usize);
                self.free_slot(idx);
                true
            }
        }
    }

    /// Execute the single next event, if any. Returns the instant it fired.
    pub fn step(&mut self, world: &mut W) -> Option<SimTime> {
        let &HeapEntry { at, slot: idx, .. } = self.heap.first()?;
        if let Some(h) = self.horizon {
            if at > h {
                // Past the horizon: drop this and everything later.
                self.clear_all();
                return None;
            }
        }
        self.heap_remove(0);
        debug_assert!(at >= self.now, "time must be monotone");
        self.now = at;
        self.executed += 1;
        let state = std::mem::replace(&mut self.slots[idx as usize].state, SlotState::Running);
        match state {
            SlotState::Once(f) => {
                // Freed before the call, like the map-based engine
                // removed the body before calling it: a self-cancel
                // inside `f` misses (the id is stale by then).
                self.free_slot(idx);
                f(world, self);
            }
            SlotState::Every { interval, mut f } => {
                let epoch = self.clear_epoch;
                if f(world, self).is_continue() {
                    if epoch == self.clear_epoch {
                        let slot = &mut self.slots[idx as usize];
                        let (key, seq) = (slot.key, slot.seq);
                        slot.state = SlotState::Every { interval, f };
                        self.heap_push(at + interval, key, seq, idx);
                    }
                    // Else: a nested run hit the horizon and cleared the
                    // slab; the task is over along with everything else.
                } else {
                    self.free_slot(idx);
                }
            }
            SlotState::Free { .. } | SlotState::Running => unreachable!("queued event has a body"),
        }
        Some(at)
    }

    /// Run until the queue drains (or the horizon is reached).
    pub fn run(&mut self, world: &mut W) -> SimTime {
        while self.step(world).is_some() {}
        self.now
    }

    /// Run until the given instant (inclusive); later events stay queued
    /// and the clock advances to `until`.
    pub fn run_until(&mut self, world: &mut W, until: SimTime) -> SimTime {
        while self.next_event_time().is_some_and(|t| t <= until) {
            self.step(world);
        }
        self.now = self.now.max(until);
        self.now
    }

    // --- Slab ------------------------------------------------------

    /// Take a slot off the free list (or grow the slab) and fill it.
    fn alloc(&mut self, key: u64, seq: u64, state: SlotState<W>) -> u32 {
        if self.free_head != NONE {
            let idx = self.free_head;
            let slot = &mut self.slots[idx as usize];
            let SlotState::Free { next } = slot.state else {
                unreachable!("free list points at a live slot");
            };
            self.free_head = next;
            slot.key = key;
            slot.seq = seq;
            slot.state = state;
            idx
        } else {
            let idx = u32::try_from(self.slots.len()).expect("slab capacity");
            self.slots.push(Slot {
                generation: 0,
                key,
                seq,
                heap_pos: NONE,
                state,
            });
            idx
        }
    }

    /// Return a slot to the free list, invalidating its [`EventId`]s.
    fn free_slot(&mut self, idx: u32) {
        let slot = &mut self.slots[idx as usize];
        slot.generation = slot.generation.wrapping_add(1);
        slot.heap_pos = NONE;
        slot.state = SlotState::Free {
            next: self.free_head,
        };
        self.free_head = idx;
    }

    /// Drop every queued event (horizon reached).
    fn clear_all(&mut self) {
        self.heap.clear();
        self.slots.clear();
        self.free_head = NONE;
        self.clear_epoch += 1;
    }

    // --- Indexed d-ary heap ----------------------------------------

    fn heap_push(&mut self, at: SimTime, key: u64, seq: u64, slot: u32) {
        let pos = self.heap.len();
        self.heap.push(HeapEntry { at, key, seq, slot });
        self.slots[slot as usize].heap_pos = pos as u32;
        self.sift_up(pos);
    }

    /// Remove the entry at `pos`, keeping back-pointers consistent.
    fn heap_remove(&mut self, pos: usize) {
        let last = self.heap.len() - 1;
        self.slots[self.heap[pos].slot as usize].heap_pos = NONE;
        if pos != last {
            self.heap.swap(pos, last);
            self.heap.pop();
            self.slots[self.heap[pos].slot as usize].heap_pos = pos as u32;
            // The moved element may be smaller than its new parent or
            // larger than its new children; restore whichever way.
            if pos > 0 && self.heap[pos].key() < self.heap[(pos - 1) / D].key() {
                self.sift_up(pos);
            } else {
                self.sift_down(pos);
            }
        } else {
            self.heap.pop();
        }
    }

    fn sift_up(&mut self, mut pos: usize) {
        while pos > 0 {
            let parent = (pos - 1) / D;
            if self.heap[pos].key() < self.heap[parent].key() {
                self.heap_swap(pos, parent);
                pos = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut pos: usize) {
        loop {
            let first = pos * D + 1;
            if first >= self.heap.len() {
                break;
            }
            let end = (first + D).min(self.heap.len());
            let mut best = first;
            for c in first + 1..end {
                if self.heap[c].key() < self.heap[best].key() {
                    best = c;
                }
            }
            if self.heap[best].key() < self.heap[pos].key() {
                self.heap_swap(pos, best);
                pos = best;
            } else {
                break;
            }
        }
    }

    #[inline]
    fn heap_swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.slots[self.heap[a].slot as usize].heap_pos = a as u32;
        self.slots[self.heap[b].slot as usize].heap_pos = b as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type World = Vec<(u64, &'static str)>;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut eng: Engine<World> = Engine::new();
        eng.schedule(t(3), |w, e| w.push((e.now().as_micros(), "c")));
        eng.schedule(t(1), |w, e| w.push((e.now().as_micros(), "a")));
        eng.schedule(t(2), |w, e| w.push((e.now().as_micros(), "b")));
        let mut w = Vec::new();
        eng.run(&mut w);
        let labels: Vec<_> = w.iter().map(|(_, l)| *l).collect();
        assert_eq!(labels, vec!["a", "b", "c"]);
    }

    #[test]
    fn same_time_events_fire_fifo() {
        let mut eng: Engine<World> = Engine::new();
        for label in ["first", "second", "third"] {
            eng.schedule(t(5), move |w, _| w.push((0, label)));
        }
        let mut w = Vec::new();
        eng.run(&mut w);
        let labels: Vec<_> = w.iter().map(|(_, l)| *l).collect();
        assert_eq!(labels, vec!["first", "second", "third"]);
    }

    #[test]
    fn scheduling_in_past_clamps_to_now() {
        let mut eng: Engine<World> = Engine::new();
        eng.schedule(t(10), |w, e| {
            e.schedule(t(1), |w, e| {
                assert_eq!(e.now(), t(10));
                w.push((0, "clamped"));
            });
            w.push((0, "outer"));
        });
        let mut w = Vec::new();
        eng.run(&mut w);
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn nested_scheduling_from_events() {
        let mut eng: Engine<World> = Engine::new();
        eng.schedule(t(1), |_, e| {
            e.schedule_in(SimDuration::from_secs(2), |w, e| {
                assert_eq!(e.now(), t(3));
                w.push((e.now().as_micros(), "nested"));
            });
        });
        let mut w = Vec::new();
        let end = eng.run(&mut w);
        assert_eq!(end, t(3));
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn cancel_prevents_execution() {
        let mut eng: Engine<World> = Engine::new();
        let id = eng.schedule(t(1), |w, _| w.push((0, "no")));
        assert!(eng.cancel(id));
        assert!(!eng.cancel(id), "double-cancel is a no-op");
        let mut w = Vec::new();
        eng.run(&mut w);
        assert!(w.is_empty());
    }

    #[test]
    fn periodic_fires_until_break() {
        let mut eng: Engine<Vec<u64>> = Engine::new();
        let mut count = 0;
        eng.schedule_every(t(0), SimDuration::from_secs(2), move |w, e| {
            count += 1;
            w.push(e.now().as_micros());
            if count == 4 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        let mut w = Vec::new();
        eng.run(&mut w);
        assert_eq!(
            w,
            vec![0, 2_000_000, 4_000_000, 6_000_000],
            "fires at 0,2,4,6s then stops"
        );
    }

    #[test]
    fn periodic_can_be_cancelled_externally() {
        let mut eng: Engine<Vec<u64>> = Engine::new();
        let id = eng.schedule_every(t(0), SimDuration::from_secs(1), |w, e| {
            w.push(e.now().as_micros());
            ControlFlow::Continue(())
        });
        eng.schedule(t(3), move |_, e| {
            e.cancel(id);
        });
        let mut w = Vec::new();
        eng.run(&mut w);
        // Fires at 0,1,2,3 — the cancel event at t=3 was scheduled after
        // the periodic task, so the periodic firing at t=3 happens first.
        assert_eq!(w.len(), 4);
    }

    #[test]
    fn run_until_leaves_later_events_queued() {
        let mut eng: Engine<Vec<u64>> = Engine::new();
        eng.schedule(t(1), |w, _| w.push(1));
        eng.schedule(t(5), |w, _| w.push(5));
        let mut w = Vec::new();
        eng.run_until(&mut w, t(3));
        assert_eq!(w, vec![1]);
        assert_eq!(eng.pending(), 1);
        eng.run(&mut w);
        assert_eq!(w, vec![1, 5]);
    }

    #[test]
    fn horizon_stops_execution() {
        let mut eng: Engine<Vec<u64>> = Engine::new();
        eng.set_horizon(t(2));
        eng.schedule(t(1), |w, _| w.push(1));
        eng.schedule(t(3), |w, _| w.push(3));
        let mut w = Vec::new();
        eng.run(&mut w);
        assert_eq!(w, vec![1]);
    }

    #[test]
    fn executed_counter() {
        let mut eng: Engine<Vec<u64>> = Engine::new();
        for s in 0..10 {
            eng.schedule(t(s), |_, _| {});
        }
        let mut w = Vec::new();
        eng.run(&mut w);
        assert_eq!(eng.executed(), 10);
    }

    #[test]
    #[should_panic(expected = "periodic interval must be > 0")]
    fn zero_interval_rejected() {
        let mut eng: Engine<Vec<u64>> = Engine::new();
        eng.schedule_every(t(0), SimDuration::ZERO, |_, _| ControlFlow::Continue(()));
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn next_event_time_skips_cancelled() {
        let mut eng: Engine<Vec<u64>> = Engine::new();
        let early = eng.schedule(t(1), |_, _| {});
        eng.schedule(t(5), |_, _| {});
        assert_eq!(eng.next_event_time(), Some(t(1)));
        eng.cancel(early);
        assert_eq!(eng.next_event_time(), Some(t(5)));
    }

    #[test]
    fn next_event_time_empty() {
        let eng: Engine<Vec<u64>> = Engine::new();
        assert_eq!(eng.next_event_time(), None);
    }

    #[test]
    fn periodic_self_cancel_via_break_frees_slot() {
        let mut eng: Engine<u64> = Engine::new();
        let id = eng.schedule_every(t(0), SimDuration::from_secs(1), |w, _| {
            *w += 1;
            ControlFlow::Break(())
        });
        let mut w = 0u64;
        eng.run(&mut w);
        assert_eq!(w, 1);
        assert!(!eng.cancel(id), "task already gone after Break");
        assert_eq!(eng.pending(), 0);
    }

    #[test]
    fn events_scheduled_during_run_until_respect_cutoff() {
        let mut eng: Engine<Vec<u64>> = Engine::new();
        eng.schedule(t(1), |w, e| {
            w.push(1);
            e.schedule(t(2), |w, _| w.push(2));
            e.schedule(t(10), |w, _| w.push(10));
        });
        let mut w = Vec::new();
        eng.run_until(&mut w, t(5));
        assert_eq!(w, vec![1, 2], "the t=10 event waits");
        eng.run(&mut w);
        assert_eq!(w, vec![1, 2, 10]);
    }

    #[test]
    fn interleaved_oneshot_and_periodic_order() {
        let mut eng: Engine<Vec<&'static str>> = Engine::new();
        eng.schedule_every(t(2), SimDuration::from_secs(2), |w, e| {
            w.push("periodic");
            if e.now() >= t(6) {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        eng.schedule(t(3), |w, _| w.push("oneshot"));
        let mut w = Vec::new();
        eng.run(&mut w);
        assert_eq!(w, vec!["periodic", "oneshot", "periodic", "periodic"]);
    }
}

#[cfg(test)]
mod slab_tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pending_excludes_cancelled_immediately() {
        let mut eng: Engine<Vec<u64>> = Engine::new();
        let a = eng.schedule(t(1), |_, _| {});
        let _b = eng.schedule(t(2), |_, _| {});
        assert_eq!(eng.pending(), 2);
        eng.cancel(a);
        assert_eq!(eng.pending(), 1, "cancelled events leave the queue eagerly");
    }

    #[test]
    fn stale_id_cannot_cancel_slot_reuser() {
        let mut eng: Engine<Vec<u64>> = Engine::new();
        let a = eng.schedule(t(1), |_, _| {});
        assert!(eng.cancel(a));
        // The freed slot is reused by the next schedule; the stale
        // handle must miss it.
        let _b = eng.schedule(t(2), |w, _| w.push(2));
        assert!(!eng.cancel(a), "stale id is generation-checked");
        let mut w = Vec::new();
        eng.run(&mut w);
        assert_eq!(w, vec![2], "the reuser still fired");
    }

    #[test]
    fn slot_reuse_does_not_perturb_order() {
        // Fill, drain, and refill the slab: ordering is governed by
        // (time, schedule order) alone, never by slot index.
        let mut eng: Engine<Vec<u64>> = Engine::new();
        let ids: Vec<_> = (0..8).map(|i| eng.schedule(t(50 + i), |_, _| {})).collect();
        for id in ids {
            assert!(eng.cancel(id));
        }
        // Schedule in reverse time order so freed slots are claimed by
        // late events first.
        for i in (0..8u64).rev() {
            eng.schedule(t(1 + i), move |w: &mut Vec<u64>, _| w.push(i));
        }
        let mut w = Vec::new();
        eng.run(&mut w);
        assert_eq!(w, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn periodic_keeps_original_seq_across_rearms() {
        // A periodic armed before a one-shot must keep firing before it
        // when their instants collide, on every re-arm — the re-armed
        // entry keeps the original sequence number.
        let mut eng: Engine<Vec<&'static str>> = Engine::new();
        eng.schedule_every(t(1), SimDuration::from_secs(1), |w, e| {
            w.push("periodic");
            if e.now() >= t(3) {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        for s in 1..=3 {
            eng.schedule(t(s), |w: &mut Vec<&'static str>, _| w.push("oneshot"));
        }
        let mut w = Vec::new();
        eng.run(&mut w);
        assert_eq!(
            w,
            vec!["periodic", "oneshot", "periodic", "oneshot", "periodic", "oneshot"]
        );
    }

    #[test]
    fn periodic_self_cancel_from_callback_misses() {
        // Matches the reference engine: the body is out of the table
        // while it runs, so a self-cancel returns false and the re-arm
        // stands; Break is the way to stop from inside.
        use std::cell::Cell;
        use std::rc::Rc;
        let mut eng: Engine<Vec<u64>> = Engine::new();
        let slot: Rc<Cell<Option<EventId>>> = Rc::new(Cell::new(None));
        let slot2 = Rc::clone(&slot);
        let id = eng.schedule_every(t(1), SimDuration::from_secs(1), move |w, e| {
            w.push(e.now().as_micros());
            assert!(!e.cancel(slot2.get().unwrap()), "self-cancel misses");
            if w.len() == 2 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        slot.set(Some(id));
        let mut w = Vec::new();
        eng.run(&mut w);
        assert_eq!(w.len(), 2, "re-arm survived the self-cancel");
    }

    #[test]
    fn heavy_cancel_storm_keeps_heap_consistent() {
        // Interleave schedules and cancels at scale; every survivor
        // fires exactly once, in order.
        let mut eng: Engine<Vec<u64>> = Engine::new();
        let mut keep = Vec::new();
        let mut drop_ids = Vec::new();
        for i in 0..500u64 {
            // Spread times so the heap actually reshuffles on removal.
            let at = t(1 + (i * 37) % 101);
            let id = eng.schedule(at, move |w: &mut Vec<u64>, _| w.push((i * 37) % 101));
            if i % 3 == 0 {
                keep.push(((i * 37) % 101, id));
            } else {
                drop_ids.push(id);
            }
        }
        for id in drop_ids {
            assert!(eng.cancel(id));
        }
        assert_eq!(eng.pending(), keep.len());
        let mut w = Vec::new();
        eng.run(&mut w);
        let mut expect: Vec<u64> = keep.iter().map(|&(s, _)| s).collect();
        expect.sort_unstable();
        let mut got = w.clone();
        got.sort_unstable();
        assert_eq!(got, expect);
        let mut sorted = w.clone();
        sorted.sort_unstable();
        assert_eq!(w, sorted, "fired in time order");
    }

    #[test]
    fn keyed_events_order_by_key_then_seq() {
        // At one instant: key-0 events first in schedule order, then
        // keyed events by ascending key — regardless of schedule order.
        let mut eng: Engine<Vec<&'static str>> = Engine::new();
        eng.schedule_keyed(t(5), 30, |w, _| w.push("k30"));
        eng.schedule(t(5), |w, _| w.push("plain-a"));
        eng.schedule_keyed(t(5), 10, |w, _| w.push("k10"));
        eng.schedule_keyed(t(5), 20, |w, _| w.push("k20"));
        eng.schedule(t(5), |w, _| w.push("plain-b"));
        let mut w = Vec::new();
        eng.run(&mut w);
        assert_eq!(w, vec!["plain-a", "plain-b", "k10", "k20", "k30"]);
    }

    #[test]
    fn keyed_order_is_schedule_order_invariant() {
        // The execution order of same-instant keyed events depends only
        // on their keys: two engines that schedule the same keyed set
        // in different orders run them identically. This is the
        // property sharded Worlds rely on for partition invariance.
        let run_with = |perm: &[u64]| -> Vec<u64> {
            let mut eng: Engine<Vec<u64>> = Engine::new();
            for &k in perm {
                eng.schedule_keyed(t(1), k, move |w, _| w.push(k));
            }
            let mut w = Vec::new();
            eng.run(&mut w);
            w
        };
        assert_eq!(run_with(&[3, 1, 4, 2]), vec![1, 2, 3, 4]);
        assert_eq!(run_with(&[4, 3, 2, 1]), vec![1, 2, 3, 4]);
    }

    #[test]
    fn keyed_ties_fall_back_to_schedule_order() {
        let mut eng: Engine<Vec<&'static str>> = Engine::new();
        eng.schedule_keyed(t(1), 7, |w, _| w.push("first"));
        eng.schedule_keyed(t(1), 7, |w, _| w.push("second"));
        let mut w = Vec::new();
        eng.run(&mut w);
        assert_eq!(w, vec!["first", "second"]);
    }

    #[test]
    fn keyed_events_respect_time_before_key() {
        let mut eng: Engine<Vec<&'static str>> = Engine::new();
        eng.schedule_keyed(t(1), u64::MAX, |w, _| w.push("early-big-key"));
        eng.schedule(t(2), |w, _| w.push("late-plain"));
        let mut w = Vec::new();
        eng.run(&mut w);
        assert_eq!(w, vec!["early-big-key", "late-plain"]);
    }

    #[test]
    fn keyed_events_can_be_cancelled() {
        let mut eng: Engine<Vec<u64>> = Engine::new();
        let id = eng.schedule_keyed(t(1), 5, |w, _| w.push(5));
        eng.schedule_keyed(t(1), 6, |w, _| w.push(6));
        assert!(eng.cancel(id));
        let mut w = Vec::new();
        eng.run(&mut w);
        assert_eq!(w, vec![6]);
    }

    #[test]
    fn horizon_clear_resets_slab() {
        let mut eng: Engine<Vec<u64>> = Engine::new();
        eng.set_horizon(t(2));
        eng.schedule(t(1), |w, _| w.push(1));
        eng.schedule(t(5), |_, _| {});
        eng.schedule_every(t(4), SimDuration::from_secs(1), |_, _| {
            ControlFlow::Continue(())
        });
        let mut w = Vec::new();
        eng.run(&mut w);
        assert_eq!(w, vec![1]);
        assert_eq!(eng.pending(), 0, "horizon clears everything");
        // The engine still works after the clear.
        eng.schedule(t(2), |w, _| w.push(2));
        eng.run(&mut w);
        assert_eq!(w, vec![1, 2]);
    }
}
