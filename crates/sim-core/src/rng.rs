//! Deterministic pseudo-random number generation.
//!
//! The experiment harness must replay bit-identically from a seed, so the
//! simulation owns its generators rather than relying on thread-local or
//! OS-seeded state. We implement SplitMix64 (for seeding / cheap streams)
//! and Xoshiro256++ (the workhorse), both public-domain algorithms by
//! Blackman & Vigna.
//!
//! Gaussian deviates use Box–Muller with a cached spare; log-normal
//! deviates build on that (used by the OS-jitter model in
//! `fluxpm-workloads`).

/// SplitMix64: a tiny, high-quality 64-bit generator. Primarily used to
/// expand one user seed into the 256-bit state Xoshiro requires, and for
/// cheap decorrelated sub-streams (one per node, one per GPU, ...).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed. Any seed (including 0) is fine.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Xoshiro256++: fast, high-quality, 256-bit state. All stochastic model
/// components (sensor noise, OS jitter, NVML failure injection, queue
/// generation) draw from per-component instances of this generator.
#[derive(Debug, Clone)]
pub struct Xoshiro256pp {
    s: [u64; 4],
    /// Cached second Box–Muller deviate.
    gauss_spare: Option<f64>,
}

impl Xoshiro256pp {
    /// Seed via SplitMix64 expansion, per the authors' recommendation.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Xoshiro256pp {
            s,
            gauss_spare: None,
        }
    }

    /// Derive a decorrelated child stream (e.g. one per simulated node).
    /// Deterministic: the n-th child of a given parent is always the same.
    pub fn child(&mut self, tag: u64) -> Xoshiro256pp {
        let mix = self.next_u64() ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Xoshiro256pp::seed_from_u64(mix)
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform f64 in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform f64 in `[lo, hi)`. Requires `lo <= hi`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)` via Lemire's multiply-shift rejection.
    /// `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Unbiased: reject the short range.
        let threshold = n.wrapping_neg() % n;
        loop {
            let r = self.next_u64();
            let (hi, lo) = {
                let wide = (r as u128) * (n as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= threshold {
                return hi;
            }
        }
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Standard normal deviate (Box–Muller, spare cached).
    pub fn gaussian(&mut self) -> f64 {
        if let Some(spare) = self.gauss_spare.take() {
            return spare;
        }
        // Draw u1 in (0,1] to keep ln() finite.
        let mut u1 = self.next_f64();
        if u1 <= f64::MIN_POSITIVE {
            u1 = f64::MIN_POSITIVE;
        }
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal deviate with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.gaussian()
    }

    /// Log-normal deviate: `exp(N(mu, sigma))`. With `mu = -sigma^2/2` the
    /// mean of the distribution is 1, which is how the OS-jitter model
    /// produces an unbiased multiplicative slowdown factor.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.gaussian()).exp()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Pick a uniformly random element (None iff the slice is empty).
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.below(xs.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 from the public-domain C code.
        let mut sm = SplitMix64::new(0);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, b);
        // Determinism.
        let mut sm2 = SplitMix64::new(0);
        assert_eq!(sm2.next_u64(), a);
        assert_eq!(sm2.next_u64(), b);
    }

    #[test]
    fn xoshiro_is_deterministic() {
        let mut a = Xoshiro256pp::seed_from_u64(42);
        let mut b = Xoshiro256pp::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xoshiro256pp::seed_from_u64(1);
        let mut b = Xoshiro256pp::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn child_streams_are_deterministic_and_distinct() {
        let mut parent1 = Xoshiro256pp::seed_from_u64(7);
        let mut parent2 = Xoshiro256pp::seed_from_u64(7);
        let mut c1 = parent1.child(3);
        let mut c2 = parent2.child(3);
        assert_eq!(c1.next_u64(), c2.next_u64());
        let mut c3 = parent1.child(4);
        assert_ne!(c1.next_u64(), c3.next_u64());
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let x = rng.below(7) as usize;
            assert!(x < 7);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn range_inclusive_hits_endpoints() {
        let mut rng = Xoshiro256pp::seed_from_u64(13);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2000 {
            match rng.range_inclusive(5, 8) {
                5 => lo_seen = true,
                8 => hi_seen = true,
                x => assert!((5..=8).contains(&x)),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = Xoshiro256pp::seed_from_u64(17);
        let n = 100_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let x = rng.gaussian();
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn lognormal_mean_one_parameterization() {
        let mut rng = Xoshiro256pp::seed_from_u64(19);
        let sigma: f64 = 0.2;
        let mu = -sigma * sigma / 2.0;
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.lognormal(mu, sigma)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Xoshiro256pp::seed_from_u64(23);
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Xoshiro256pp::seed_from_u64(29);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = Xoshiro256pp::seed_from_u64(31);
        let empty: [u8; 0] = [];
        assert!(rng.choose(&empty).is_none());
        assert_eq!(rng.choose(&[42]), Some(&42));
    }
}
