//! Lightweight simulation tracing.
//!
//! The experiment harness renders timelines (paper Figs. 1, 5, 6, 7) from
//! trace records; debugging the broker/TBON layer also relies on it. The
//! trace is a plain append-only vector — events already execute on one
//! logical thread, so no synchronization is needed.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Severity / verbosity of a trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TraceLevel {
    /// High-volume records (per-message, per-sample).
    Debug,
    /// State transitions (job start/stop, cap changes).
    Info,
    /// Anomalies (cap failures, buffer wrap, dropped messages).
    Warn,
}

/// A single trace record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceEntry {
    /// When the record was emitted.
    pub at: SimTime,
    /// Severity.
    pub level: TraceLevel,
    /// Subsystem tag, e.g. `"tbon"`, `"fpp"`, `"opal"`.
    pub subsystem: &'static str,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} {:?} {}] {}",
            self.at, self.level, self.subsystem, self.message
        )
    }
}

/// An append-only trace buffer with a level filter.
#[derive(Debug, Default)]
pub struct Trace {
    entries: Vec<TraceEntry>,
    min_level: Option<TraceLevel>,
}

impl Trace {
    /// A trace that records nothing (the default for production runs).
    pub fn disabled() -> Self {
        Trace {
            entries: Vec::new(),
            min_level: None,
        }
    }

    /// A trace recording entries at or above `level`.
    pub fn enabled(level: TraceLevel) -> Self {
        Trace {
            entries: Vec::new(),
            min_level: Some(level),
        }
    }

    /// True if a record at `level` would be kept.
    pub fn accepts(&self, level: TraceLevel) -> bool {
        self.min_level.is_some_and(|min| level >= min)
    }

    /// Record an entry (dropped if below the filter or disabled).
    pub fn emit(
        &mut self,
        at: SimTime,
        level: TraceLevel,
        subsystem: &'static str,
        message: impl Into<String>,
    ) {
        if self.accepts(level) {
            self.entries.push(TraceEntry {
                at,
                level,
                subsystem,
                message: message.into(),
            });
        }
    }

    /// All recorded entries, in emission order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Entries from a given subsystem.
    pub fn for_subsystem<'a>(
        &'a self,
        subsystem: &'a str,
    ) -> impl Iterator<Item = &'a TraceEntry> + 'a {
        self.entries
            .iter()
            .filter(move |e| e.subsystem == subsystem)
    }

    /// Drop all entries (keeps the filter).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let mut tr = Trace::disabled();
        tr.emit(SimTime::ZERO, TraceLevel::Warn, "x", "boom");
        assert!(tr.entries().is_empty());
        assert!(!tr.accepts(TraceLevel::Warn));
    }

    #[test]
    fn level_filter_applies() {
        let mut tr = Trace::enabled(TraceLevel::Info);
        tr.emit(SimTime::ZERO, TraceLevel::Debug, "x", "drop me");
        tr.emit(SimTime::ZERO, TraceLevel::Info, "x", "keep me");
        tr.emit(SimTime::ZERO, TraceLevel::Warn, "y", "keep me too");
        assert_eq!(tr.entries().len(), 2);
    }

    #[test]
    fn subsystem_filtering() {
        let mut tr = Trace::enabled(TraceLevel::Debug);
        tr.emit(SimTime::ZERO, TraceLevel::Info, "tbon", "a");
        tr.emit(SimTime::ZERO, TraceLevel::Info, "fpp", "b");
        tr.emit(SimTime::ZERO, TraceLevel::Info, "tbon", "c");
        assert_eq!(tr.for_subsystem("tbon").count(), 2);
        assert_eq!(tr.for_subsystem("fpp").count(), 1);
    }

    #[test]
    fn display_is_readable() {
        let e = TraceEntry {
            at: SimTime::from_secs(2),
            level: TraceLevel::Warn,
            subsystem: "opal",
            message: "cap failed".into(),
        };
        let s = e.to_string();
        assert!(s.contains("opal"));
        assert!(s.contains("cap failed"));
    }

    #[test]
    fn clear_keeps_filter() {
        let mut tr = Trace::enabled(TraceLevel::Debug);
        tr.emit(SimTime::ZERO, TraceLevel::Debug, "x", "a");
        tr.clear();
        assert!(tr.entries().is_empty());
        assert!(tr.accepts(TraceLevel::Debug));
    }
}
