//! Simulator hot-path benchmarks:
//!
//! * `engine_churn` — mixed schedule/cancel/periodic throughput on the
//!   optimized slab engine vs the in-tree reference engine (same seed,
//!   same program, measured live),
//! * `sliced_drain` — the experiment-driver pattern of polling
//!   `next_event_time` before every step (O(1) on the slab engine,
//!   O(pending) on the reference engine),
//! * `delivery` — one root → leaf echo RPC round trip per iteration at
//!   two tree depths (per-hop cost = round trip / (2 × hops)),
//! * `soak_128_rank` — the full 128-rank monitor + manager chaos storm
//!   from `fluxpm_experiments::chaos`.
//!
//! The committed `BENCH_sim.json` trajectory is produced by the
//! `bench_sim` binary, not by this target; this target is what CI's
//! bench smoke job runs in `--quick` mode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fluxpm_bench::workload::{
    churn_baseline, churn_new, sliced_drain_baseline, sliced_drain_new, DeliveryRig,
};
use fluxpm_experiments::chaos::{storm, StormConfig};
use std::hint::black_box;

fn bench_engine_churn(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_churn");
    for &n in &[2_000usize, 20_000] {
        g.bench_with_input(BenchmarkId::new("slab", n), &n, |b, &n| {
            b.iter(|| black_box(churn_new(n, 42)))
        });
        g.bench_with_input(BenchmarkId::new("baseline", n), &n, |b, &n| {
            b.iter(|| black_box(churn_baseline(n, 42)))
        });
    }
    g.finish();
}

fn bench_sliced_drain(c: &mut Criterion) {
    let mut g = c.benchmark_group("sliced_drain");
    let (n, slices) = (5_000usize, 50u64);
    g.bench_function("slab", |b| {
        b.iter(|| black_box(sliced_drain_new(n, slices, 42)))
    });
    g.bench_function("baseline", |b| {
        b.iter(|| black_box(sliced_drain_baseline(n, slices, 42)))
    });
    g.finish();
}

fn bench_delivery(c: &mut Criterion) {
    let mut g = c.benchmark_group("delivery");
    for &nnodes in &[8u32, 128] {
        let mut rig = DeliveryRig::new(nnodes);
        let hops = rig.hops();
        g.bench_with_input(
            BenchmarkId::new("echo_roundtrip", format!("{hops}hops")),
            &hops,
            |b, _| b.iter(|| rig.roundtrip()),
        );
    }
    g.finish();
}

fn bench_soak_128_rank(c: &mut Criterion) {
    let cfg = StormConfig::new(128, 7);
    c.bench_function("soak_128_rank/standard", |b| {
        b.iter(|| black_box(storm(&cfg)))
    });
}

criterion_group!(
    benches,
    bench_engine_churn,
    bench_sliced_drain,
    bench_delivery,
    bench_soak_128_rank
);
criterion_main!(benches);
