//! One criterion benchmark per paper table/figure.
//!
//! Each benchmark executes a (size-reduced where needed) version of the
//! corresponding experiment scenario end-to-end, so `cargo bench`
//! regenerates the paper's artifacts' code paths and tracks the
//! simulator's own performance. The full-size experiment binaries live
//! in `fluxpm-experiments`.

use criterion::{criterion_group, criterion_main, Criterion};
use fluxpm_experiments::{JobRequest, PowerSetup, Scenario};
use fluxpm_hw::{MachineKind, Watts};
use fluxpm_manager::ManagerConfig;
use fluxpm_monitor::MonitorConfig;
use std::hint::black_box;

/// Reduced Table IV mix: same apps and policies, shorter work.
fn tab4_scenario(power: PowerSetup) -> Scenario {
    Scenario::new(MachineKind::Lassen, 8)
        .with_power(power)
        .with_job(JobRequest::new("GEMM", 6).with_work_seconds(120.0))
        .with_job(JobRequest::new("Quicksilver", 2).with_work_seconds(80.0))
}

fn bench_fig1_timeline(c: &mut Criterion) {
    c.bench_function("fig1/quicksilver_single_node_timeline", |b| {
        b.iter(|| {
            let r = Scenario::new(MachineKind::Lassen, 1)
                .with_job(JobRequest::new("Quicksilver", 1).with_work_scale(3.0))
                .run();
            black_box(r.node_series[0].len())
        })
    });
}

fn bench_fig2_scaling(c: &mut Criterion) {
    c.bench_function("fig2/weak_scaling_sweep_point", |b| {
        b.iter(|| {
            let r = Scenario::new(MachineKind::Lassen, 8)
                .with_job(JobRequest::new("Laghos", 8).with_work_scale(2.0))
                .run();
            black_box(r.jobs[0].avg_node_power_w)
        })
    });
}

fn bench_table2_cross_machine(c: &mut Criterion) {
    c.bench_function("table2/lammps_both_machines", |b| {
        b.iter(|| {
            let l = Scenario::new(MachineKind::Lassen, 4)
                .with_job(JobRequest::new("LAMMPS", 4))
                .run();
            let t = Scenario::new(MachineKind::Tioga, 4)
                .with_job(JobRequest::new("LAMMPS", 4))
                .run();
            black_box((l.jobs[0].runtime_s, t.jobs[0].runtime_s))
        })
    });
}

fn bench_fig3_overhead(c: &mut Criterion) {
    c.bench_function("fig3/monitored_vs_unmonitored_run", |b| {
        b.iter(|| {
            let base = Scenario::new(MachineKind::Lassen, 2)
                .with_job(JobRequest::new("Laghos", 2).with_work_scale(4.0))
                .run();
            let with = Scenario::new(MachineKind::Lassen, 2)
                .with_monitor(MonitorConfig::default())
                .with_job(JobRequest::new("Laghos", 2).with_work_scale(4.0))
                .run();
            black_box(with.jobs[0].runtime_s / base.jobs[0].runtime_s)
        })
    });
}

fn bench_fig4_variability(c: &mut Criterion) {
    c.bench_function("fig4/jittered_repetition", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let r = Scenario::new(MachineKind::Lassen, 2)
                .with_seed(seed)
                .with_jitter(fluxpm_workloads::JitterModel::default())
                .with_job(JobRequest::new("Quicksilver", 2))
                .run();
            black_box(r.jobs[0].runtime_s)
        })
    });
}

fn bench_table3_static(c: &mut Criterion) {
    c.bench_function("table3/static_cap_sweep_point", |b| {
        b.iter(|| {
            let r = tab4_scenario(PowerSetup::StaticNodeCap(1200.0)).run();
            black_box(r.cluster_max_w)
        })
    });
}

fn bench_table4_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4");
    g.sample_size(10);
    g.bench_function("proportional", |b| {
        b.iter(|| {
            let r = tab4_scenario(PowerSetup::Managed {
                static_node_cap: Some(1950.0),
                config: ManagerConfig::proportional(Watts(9600.0)),
            })
            .run();
            black_box(r.jobs[0].energy_per_node_kj)
        })
    });
    g.bench_function("fpp", |b| {
        b.iter(|| {
            let r = tab4_scenario(PowerSetup::Managed {
                static_node_cap: Some(1950.0),
                config: ManagerConfig::fpp(Watts(9600.0)),
            })
            .run();
            black_box(r.jobs[0].energy_per_node_kj)
        })
    });
    g.finish();
}

fn bench_fig5_fig6_timelines(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_fig6");
    g.sample_size(10);
    for (name, fpp) in [("fig5_proportional", false), ("fig6_fpp", true)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let config = if fpp {
                    ManagerConfig::fpp(Watts(9600.0))
                } else {
                    ManagerConfig::proportional(Watts(9600.0))
                };
                let r = tab4_scenario(PowerSetup::Managed {
                    static_node_cap: Some(1950.0),
                    config,
                })
                .run();
                black_box(r.node_series[0].len())
            })
        });
    }
    g.finish();
}

fn bench_fig7_nonmpi(c: &mut Criterion) {
    c.bench_function("fig7/charmpp_alongside_gemm", |b| {
        b.iter(|| {
            let r = Scenario::new(MachineKind::Lassen, 8)
                .with_power(PowerSetup::Managed {
                    static_node_cap: Some(1950.0),
                    config: ManagerConfig::proportional(Watts(9600.0)),
                })
                .with_job(JobRequest::new("GEMM", 6).with_work_seconds(120.0))
                .with_job(
                    JobRequest::new("NQueens", 2)
                        .with_work_seconds(60.0)
                        .submit_at(30.0),
                )
                .run();
            black_box(r.makespan_s)
        })
    });
}

fn bench_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("queue");
    g.sample_size(10);
    g.bench_function("ten_jobs_sixteen_nodes", |b| {
        b.iter(|| {
            let mut s = Scenario::new(MachineKind::Lassen, 16).with_power(PowerSetup::Managed {
                static_node_cap: Some(1950.0),
                config: ManagerConfig::proportional(Watts(19_200.0)),
            });
            for j in fluxpm_experiments::experiments::queue::queue_jobs() {
                // Quarter-size works keep the bench iteration short.
                let w = j.work_seconds.unwrap_or(200.0) / 4.0;
                s = s.with_job(JobRequest::new(j.app, j.nnodes).with_work_seconds(w));
            }
            black_box(s.run().makespan_s)
        })
    });
    g.finish();
}

criterion_group!(
    paper,
    bench_fig1_timeline,
    bench_fig2_scaling,
    bench_table2_cross_machine,
    bench_fig3_overhead,
    bench_fig4_variability,
    bench_table3_static,
    bench_table4_policies,
    bench_fig5_fig6_timelines,
    bench_fig7_nonmpi,
    bench_queue,
);
criterion_main!(paper);
