//! Subscription fan-out hot-path benchmarks:
//!
//! * `telemetry_fanout/broadcast` — one publish sweep over 64 nodes
//!   into 1 000 and 5 000 unfiltered subscribers (every publish lands
//!   in every bounded queue),
//! * `telemetry_fanout/selective` — 1 000 subscribers each pinned to
//!   one node, so ~1/64 match per publish (filter-rejection cost),
//! * `telemetry_fanout/publish_poll_cycle` — the steady-state loop:
//!   refill every queue, then drain 1 000 subscribers in 128-delta
//!   batches,
//! * `telemetry_fanout/backpressure` — publish into permanently full
//!   queues (shed-oldest path hot),
//! * `telemetry_fanout/relay_tree` — a full publish sweep through the
//!   TBON-distributed relay plane: 64 brokers, fanout 8, 1 000
//!   leaf subscribers, per-edge batching and per-hub ingest down the
//!   tree (the [`fluxpm_bench::relay_tree`] workload).
//!
//! The committed `BENCH_telemetry.json` trajectory is produced by the
//! `bench_telemetry` binary, not by this target; this target is what
//! CI's bench smoke job runs in `--quick` mode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fluxpm_bench::relay_tree::RelayTree;
use fluxpm_monitor::{SubscriberId, SubscriptionConfig, SubscriptionFilter, TelemetryHub};
use std::hint::black_box;

const NODES: u32 = 64;

fn hub_with(subs: usize, pin_nodes: bool, capacity: usize) -> (TelemetryHub, Vec<SubscriberId>) {
    let mut hub = TelemetryHub::new(SubscriptionConfig {
        queue_capacity: capacity,
        evict_after_drops: u64::MAX,
    });
    let ids = (0..subs)
        .map(|i| {
            let filter = if pin_nodes {
                SubscriptionFilter::all().with_nodes(vec![i as u32 % NODES])
            } else {
                SubscriptionFilter::all()
            };
            hub.subscribe(filter)
        })
        .collect();
    (hub, ids)
}

fn sweep(hub: &mut TelemetryHub, ts: u64) -> u64 {
    let mut deliveries = 0u64;
    for node in 0..NODES {
        deliveries += hub.publish(node, ts, 900.0, None) as u64;
    }
    deliveries
}

fn bench_broadcast(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry_fanout");
    for &subs in &[1_000usize, 5_000] {
        let (mut hub, _ids) = hub_with(subs, false, 64);
        let mut ts = 0u64;
        g.bench_with_input(BenchmarkId::new("broadcast", subs), &subs, |b, _| {
            b.iter(|| {
                ts += 2_000_000;
                black_box(sweep(&mut hub, ts))
            })
        });
    }
    g.finish();
}

fn bench_selective(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry_fanout");
    let (mut hub, _ids) = hub_with(1_000, true, 64);
    let mut ts = 0u64;
    g.bench_function("selective_1k", |b| {
        b.iter(|| {
            ts += 2_000_000;
            black_box(sweep(&mut hub, ts))
        })
    });
    g.finish();
}

fn bench_poll_drain(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry_fanout");
    // One iteration = refill every queue (4 sweeps) and drain all 1 000
    // subscribers in 128-delta batches — the steady-state consumer loop.
    let (mut hub, ids) = hub_with(1_000, false, 512);
    let mut ts = 0u64;
    g.bench_function("publish_poll_cycle_1k", |b| {
        b.iter(|| {
            for _ in 0..4 {
                ts += 2_000_000;
                sweep(&mut hub, ts);
            }
            let mut drained = 0usize;
            for &id in &ids {
                while let Some((deltas, _)) = hub.poll(id, 128) {
                    if deltas.is_empty() {
                        break;
                    }
                    drained += deltas.len();
                }
            }
            black_box(drained)
        })
    });
    g.finish();
}

fn bench_backpressure(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry_fanout");
    let (mut hub, _ids) = hub_with(1_000, false, 8);
    let mut ts = 0u64;
    // Pre-fill so every queue sheds on each delivery.
    for r in 0..4u64 {
        ts = r * 2_000_000;
        sweep(&mut hub, ts);
    }
    g.bench_function("backpressure_full_queues_1k", |b| {
        b.iter(|| {
            ts += 2_000_000;
            black_box(sweep(&mut hub, ts))
        })
    });
    g.finish();
}

fn bench_relay_tree(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry_fanout");
    // One iteration = 64 published deltas cascaded down every
    // interested edge into 1 000 leaf subscribers (64 000 deliveries).
    // Queues are small and eviction is off, so sustained iteration
    // keeps the shed-oldest path hot — same regime as `backpressure`.
    let mut tree = RelayTree::new(64, 8, 1_000, 64);
    g.bench_function("relay_tree_64x1k", |b| {
        b.iter(|| black_box(tree.publish_sweep()))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_broadcast,
    bench_selective,
    bench_poll_drain,
    bench_backpressure,
    bench_relay_tree
);
criterion_main!(benches);
