//! Congestion-aware overlay benchmarks:
//!
//! * `echo_roundtrip` — one root → leaf echo RPC per iteration on a
//!   clean 128-rank tree vs the same tree with the leaf's uplink at
//!   0.999 severity. The clean point prices the queueing model's fast
//!   path (zero-serialization crossings bypass the FIFO); the congested
//!   point adds severity lookup, FIFO bookkeeping, and EWMA updates.
//! * `storm_128_rank` — the full 128-rank congestion storm (death storm
//!   plus seeded flat and Gilbert–Elliott congestion, link monitor
//!   routing around sustained congestion) vs the congestion-free storm.
//!
//! The committed `BENCH_net.json` trajectory (and its 1.25× per-hop
//! gate against `BENCH_sim.json`) is produced by the `bench_net`
//! binary, not by this target; this target is what CI's bench smoke job
//! runs in `--quick` mode.

use criterion::{criterion_group, criterion_main, Criterion};
use fluxpm_bench::workload::DeliveryRig;
use fluxpm_experiments::chaos::{storm, StormConfig};
use std::hint::black_box;

fn bench_congestion(c: &mut Criterion) {
    let mut g = c.benchmark_group("congestion");

    let mut clean = DeliveryRig::new(128);
    clean.roundtrip();
    g.bench_function("echo_roundtrip/clean", |b| b.iter(|| clean.roundtrip()));

    let mut hot = DeliveryRig::congested(128, 0.999);
    hot.roundtrip();
    g.bench_function("echo_roundtrip/severity_0.999", |b| {
        b.iter(|| hot.roundtrip())
    });

    let congested = StormConfig::congested(128, 7);
    let plain = StormConfig::new(128, 7);
    g.bench_function("storm_128_rank/congested", |b| {
        b.iter(|| black_box(storm(&congested)))
    });
    g.bench_function("storm_128_rank/clean", |b| {
        b.iter(|| black_box(storm(&plain)))
    });

    g.finish();
}

criterion_group!(benches, bench_congestion);
criterion_main!(benches);
