//! Ablation benchmarks for the design choices called out in DESIGN.md:
//!
//! * FFT kernel: radix-2 vs Bluestein vs naive DFT,
//! * period estimation: periodogram vs autocorrelation,
//! * telemetry ring buffer vs `VecDeque`,
//! * event-engine throughput (one-shot and periodic),
//! * TBON RPC fan-out across tree sizes,
//! * FPP controller epoch step,
//! * FPP give-back: instant vs staged restore on the job queue,
//! * power-resolution hot path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fluxpm_fft::fft::{fft, naive_dft};
use fluxpm_fft::period::{autocorr_period, estimate_period};
use fluxpm_fft::Complex64;
use fluxpm_hw::{lassen, PowerDemand, Watts};
use fluxpm_manager::{FppConfig, FppController};
use fluxpm_monitor::RingBuffer;
use fluxpm_sim::{Engine, SimDuration, SimTime};
use std::collections::VecDeque;
use std::hint::black_box;
use std::ops::ControlFlow;

fn signal(n: usize) -> Vec<Complex64> {
    (0..n)
        .map(|i| Complex64::new((i as f64 * 0.61).sin(), (i as f64 * 0.37).cos()))
        .collect()
}

fn bench_fft_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft_kernel");
    // 128: power of two (radix-2 path); 90: FPP's actual epoch length
    // (Bluestein path); naive DFT as the baseline both are verified
    // against.
    for &n in &[90usize, 128] {
        let x = signal(n);
        g.bench_with_input(BenchmarkId::new("fast", n), &x, |b, x| {
            b.iter(|| black_box(fft(x)))
        });
        g.bench_with_input(BenchmarkId::new("naive_dft", n), &x, |b, x| {
            b.iter(|| black_box(naive_dft(x, false)))
        });
    }
    g.finish();
}

fn bench_period_estimators(c: &mut Criterion) {
    let samples: Vec<f64> = (0..90)
        .map(|t| {
            if (t as f64 / 10.0).fract() < 0.13 {
                560.0
            } else {
                220.0
            }
        })
        .collect();
    let long: Vec<f64> = (0..360)
        .map(|t| {
            if (t as f64 / 10.0).fract() < 0.13 {
                560.0
            } else {
                220.0
            }
        })
        .collect();
    let mut g = c.benchmark_group("period_estimation");
    g.bench_function("periodogram", |b| {
        b.iter(|| black_box(estimate_period(&samples, 1.0)))
    });
    g.bench_function("autocorrelation", |b| {
        b.iter(|| black_box(autocorr_period(&samples, 1.0, 0.3)))
    });
    g.bench_function("welch_360", |b| {
        b.iter(|| black_box(fluxpm_fft::welch_estimate_period(&long, 1.0, 90)))
    });
    g.bench_function("periodogram_360", |b| {
        b.iter(|| black_box(estimate_period(&long, 1.0)))
    });
    g.finish();
}

fn bench_subinstance(c: &mut Criterion) {
    use fluxpm_flux::{JobProgram, JobSpec, StepCtx, StepOutcome, SubInstance, World};
    use fluxpm_hw::MachineKind;

    struct Sleep {
        secs: f64,
        done: f64,
    }
    impl JobProgram for Sleep {
        fn app_name(&self) -> &str {
            "sleep"
        }
        fn on_start(&mut self, _ctx: &mut StepCtx<'_>) {}
        fn step(&mut self, ctx: &mut StepCtx<'_>) -> StepOutcome {
            self.done += ctx.dt;
            if self.done >= self.secs {
                StepOutcome::Done {
                    leftover_seconds: self.done - self.secs,
                }
            } else {
                StepOutcome::Running
            }
        }
    }

    c.bench_function("subinstance_eight_children", |b| {
        b.iter(|| {
            let mut inst = SubInstance::new("ui", 8);
            for i in 0..8 {
                inst = inst.with_child(
                    format!("c{i}"),
                    1 + (i % 3) as u32,
                    Box::new(Sleep {
                        secs: 20.0 + i as f64,
                        done: 0.0,
                    }),
                );
            }
            let mut w = World::new(MachineKind::Lassen, 8, 1);
            w.autostop_after = Some(1);
            let mut eng: Engine<World> = Engine::new();
            w.install_executor(&mut eng);
            w.submit(&mut eng, JobSpec::new("ui", 8), Box::new(inst));
            eng.run(&mut w);
            black_box(w.jobs.makespan_seconds())
        })
    });
}

fn bench_ring_buffer(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry_buffer");
    g.bench_function("ring_buffer_push_wrap", |b| {
        b.iter(|| {
            let mut r = RingBuffer::new(1000);
            for i in 0..5000u64 {
                r.push(i);
            }
            black_box(r.len())
        })
    });
    g.bench_function("vecdeque_push_wrap", |b| {
        b.iter(|| {
            let mut d = VecDeque::with_capacity(1000);
            for i in 0..5000u64 {
                if d.len() == 1000 {
                    d.pop_front();
                }
                d.push_back(i);
            }
            black_box(d.len())
        })
    });
    g.finish();
}

fn bench_event_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_engine");
    g.bench_function("oneshot_10k", |b| {
        b.iter(|| {
            let mut eng: Engine<u64> = Engine::new();
            for i in 0..10_000u64 {
                eng.schedule(SimTime::from_micros(i * 7 % 9973), |w, _| *w += 1);
            }
            let mut world = 0u64;
            eng.run(&mut world);
            black_box(world)
        })
    });
    g.bench_function("periodic_10k_ticks", |b| {
        b.iter(|| {
            let mut eng: Engine<u64> = Engine::new();
            eng.schedule_every(SimTime::ZERO, SimDuration::from_micros(10), |w, _| {
                *w += 1;
                if *w >= 10_000 {
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            });
            let mut world = 0u64;
            eng.run(&mut world);
            black_box(world)
        })
    });
    g.finish();
}

fn bench_tbon_rpc(c: &mut Criterion) {
    use fluxpm_flux::{payload, FluxEngine, Rank, World};
    use fluxpm_hw::MachineKind;
    let mut g = c.benchmark_group("tbon_rpc_fanout");
    for &nodes in &[8u32, 32, 128] {
        g.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, &n| {
            b.iter(|| {
                let mut w = World::new(MachineKind::Lassen, n, 1);
                let mut eng: FluxEngine = Engine::new();
                // Fan a no-service request out to every rank; unknown
                // service errors route back through the overlay, which
                // exercises the full round-trip path.
                let mut acks = 0u32;
                for r in 0..n {
                    w.rpc(Rank(r), "bench.nop", payload(()))
                        .from(Rank::ROOT)
                        .send(&mut eng, move |_, _, _| {});
                    acks += 1;
                }
                eng.run(&mut w);
                black_box(acks)
            })
        });
    }
    g.finish();
}

fn bench_fpp_controller(c: &mut Criterion) {
    c.bench_function("fpp_controller_epoch", |b| {
        b.iter(|| {
            let mut ctl = FppController::new(FppConfig::default(), Watts(253.5));
            for epoch in 0..4 {
                for t in 0..90 {
                    let w = if ((t + epoch * 90) as f64 / 10.0).fract() < 0.13 {
                        140.0
                    } else {
                        55.0
                    };
                    ctl.store_power_sample(Watts(w));
                }
                black_box(ctl.on_epoch());
            }
            black_box(ctl.cap())
        })
    });
}

fn bench_stats_aggregation(c: &mut Criterion) {
    use fluxpm_flux::{FluxEngine, JobSpec, World};
    use fluxpm_hw::MachineKind;
    use fluxpm_monitor::{MonitorConfig, MonitorQuery};
    use fluxpm_workloads::{laghos, App, JitterModel};

    // Build one monitored world with a completed wide job, then compare
    // the direct fan-out query against the in-tree reduction.
    fn monitored_world(nodes: u32) -> (World, fluxpm_flux::JobId) {
        let mut w = World::new(MachineKind::Lassen, nodes, 3);
        w.autostop_after = Some(1);
        let mut eng: FluxEngine = Engine::new();
        fluxpm_monitor::load(&mut w, &mut eng, MonitorConfig::default());
        w.install_executor(&mut eng);
        let app = App::with_jitter(laghos(), MachineKind::Lassen, nodes, 1, JitterModel::none())
            .with_work_scale(4.0);
        let id = w.submit(&mut eng, JobSpec::new("Laghos", nodes), Box::new(app));
        eng.run(&mut w);
        (w, id)
    }

    let mut g = c.benchmark_group("stats_aggregation_64_nodes");
    g.sample_size(20);
    let (mut w1, id1) = monitored_world(64);
    g.bench_function("direct_fanout", |b| {
        b.iter(|| {
            let mut eng: FluxEngine = Engine::new();
            let query = MonitorQuery::job_stats(id1).send(&mut w1, &mut eng);
            eng.run(&mut w1);
            let done = query.ready();
            black_box(done)
        })
    });
    let (mut w2, id2) = monitored_world(64);
    g.bench_function("tree_reduce", |b| {
        b.iter(|| {
            let mut eng: FluxEngine = Engine::new();
            let query = MonitorQuery::job_stats_tree(id2).send(&mut w2, &mut eng);
            eng.run(&mut w2);
            let done = query.ready();
            black_box(done)
        })
    });
    g.finish();
}

fn bench_staged_give_back(c: &mut Criterion) {
    use fluxpm_experiments::experiments::queue::{epochs_to_restore, queue_jobs};
    use fluxpm_experiments::{JobRequest, PowerSetup, Scenario};
    use fluxpm_hw::MachineKind;
    use fluxpm_manager::ManagerConfig;

    // The §IV-E queue under FPP with each restore path (quarter-size
    // works keep iterations short, as in the paper-artifacts bench).
    fn run_queue(staged: bool) -> f64 {
        let mut config = ManagerConfig::fpp(Watts(16.0 * 1200.0));
        config.fpp.staged_give_back = staged;
        let mut s = Scenario::new(MachineKind::Lassen, 16).with_power(PowerSetup::Managed {
            static_node_cap: Some(1950.0),
            config,
        });
        for j in queue_jobs() {
            let w = j.work_seconds.unwrap_or(200.0) / 4.0;
            s = s.with_job(JobRequest::new(j.app, j.nnodes).with_work_seconds(w));
        }
        s.run().makespan_s
    }

    let mut g = c.benchmark_group("fpp_give_back");
    g.sample_size(10);
    g.bench_function("instant_restore_queue", |b| {
        b.iter(|| black_box(run_queue(false)))
    });
    g.bench_function("staged_restore_queue", |b| {
        b.iter(|| black_box(run_queue(true)))
    });
    // The controller-level restore cycle on its own.
    g.bench_function("staged_restore_cycle", |b| {
        b.iter(|| black_box(epochs_to_restore(true)))
    });
    g.finish();
}

fn bench_power_resolution(c: &mut Criterion) {
    let arch = lassen();
    let demand = PowerDemand {
        cpu: vec![Watts(150.0); arch.sockets],
        memory: Watts(80.0),
        gpu: vec![Watts(260.0); arch.gpus],
        other: arch.other,
    };
    let caps = vec![Some(Watts(200.0)); arch.gpus];
    c.bench_function("power_resolve_hot_path", |b| {
        b.iter(|| {
            black_box(fluxpm_hw::power::resolve(
                &arch,
                &demand,
                &caps,
                Some(Watts(1950.0)),
            ))
        })
    });
}

criterion_group!(
    ablations,
    bench_fft_kernels,
    bench_period_estimators,
    bench_ring_buffer,
    bench_event_engine,
    bench_tbon_rpc,
    bench_fpp_controller,
    bench_staged_give_back,
    bench_power_resolution,
    bench_subinstance,
    bench_stats_aggregation,
);
criterion_main!(ablations);
