//! FPP analytics hot-path benchmarks:
//!
//! * `estimate_period` — planned (cached plans + scratch arena, via
//!   [`fluxpm_fft::PeriodAnalyzer`]) vs unplanned single-window period
//!   estimation at n = 15 (Bluestein), 64, and 1024 (radix-2),
//! * `welch` — planned vs unplanned Welch-averaged estimation at the
//!   production segment shapes: a 180 s double epoch with 90-sample
//!   segments and a 1024-sample trace with 128-sample segments,
//! * `fpp_epoch` — one node's Welch-mode per-GPU epoch analysis
//!   (8 GPUs × 90 samples at 1 Hz): the pre-PR contiguous-Vec unplanned
//!   path vs the planned zero-copy ring-view path batched through a
//!   single shared analyzer.
//!
//! The committed `BENCH_fpp.json` trajectory is produced by the
//! `bench_fpp` binary, not by this target; this target is what CI's
//! bench smoke job runs in `--quick` mode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fluxpm_bench::fpp::{
    epoch_signal, planned_estimate, planned_welch, unplanned_estimate, unplanned_welch, FppEpochRig,
};
use fluxpm_fft::PeriodAnalyzer;
use std::hint::black_box;

fn bench_estimate_period(c: &mut Criterion) {
    let mut g = c.benchmark_group("estimate_period");
    let mut analyzer = PeriodAnalyzer::new();
    for &n in &[15usize, 64, 1024] {
        let x = epoch_signal(n, (n as f64 / 8.0).max(4.0), 7);
        // Warm the plan cache so the planned numbers are steady-state.
        planned_estimate(&mut analyzer, &x);
        g.bench_with_input(BenchmarkId::new("planned", n), &x, |b, x| {
            b.iter(|| black_box(planned_estimate(&mut analyzer, x)))
        });
        g.bench_with_input(BenchmarkId::new("unplanned", n), &x, |b, x| {
            b.iter(|| black_box(unplanned_estimate(x)))
        });
    }
    g.finish();
}

fn bench_welch(c: &mut Criterion) {
    let mut g = c.benchmark_group("welch");
    let mut analyzer = PeriodAnalyzer::new();
    for &(n, seg) in &[(180usize, 90usize), (1024, 128)] {
        let x = epoch_signal(n, 12.0, 11);
        planned_welch(&mut analyzer, &x, seg);
        let id = format!("n{n}_seg{seg}");
        g.bench_with_input(BenchmarkId::new("planned", &id), &x, |b, x| {
            b.iter(|| black_box(planned_welch(&mut analyzer, x, seg)))
        });
        g.bench_with_input(BenchmarkId::new("unplanned", &id), &x, |b, x| {
            b.iter(|| black_box(unplanned_welch(x, seg)))
        });
    }
    g.finish();
}

fn bench_fpp_epoch(c: &mut Criterion) {
    let mut g = c.benchmark_group("fpp_epoch");
    let mut rig = FppEpochRig::new(8, 90, 3);
    rig.verify_agreement();
    g.bench_function("planned_8gpu_welch", |b| {
        b.iter(|| black_box(rig.planned_epoch()))
    });
    g.bench_function("unplanned_8gpu_welch", |b| {
        b.iter(|| black_box(rig.unplanned_epoch()))
    });
    g.finish();
}

criterion_group!(benches, bench_estimate_period, bench_welch, bench_fpp_epoch);
criterion_main!(benches);
