//! Shard-scaling benchmarks for the parallel simulation core:
//!
//! * `sim_sharded/storm_128` — the 128-rank shard-scaling storm (heavy
//!   per-tick compute, chaos-soak traffic pattern) at shards 1/2/4/8.
//!   The merged trace is identical at every point, so the curve prices
//!   pure coordination + parallel speedup, nothing else.
//! * `sim_sharded/fleet_10k` — a 10k-rank fleet soak (fanout-16 TBON,
//!   light ticks) at 8 shards: the coordination-bound end of the
//!   spectrum.
//! * `sim_world_sharded/storm_64` — the *full-fidelity* sharded world
//!   (real monitor + manager stack, replicated control plane,
//!   deterministic congestion) at shards 1/2/4. The merged canonical
//!   record stream is identical at every point.
//!
//! The committed `BENCH_sim.json` scaling curve is produced by the
//! `bench_sim` binary; this target is what CI's bench smoke job runs in
//! `--quick` mode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fluxpm_bench::workload::{shard_fleet_config, shard_scaling_config};
use fluxpm_experiments::full_shard::{full_shard_run, FullShardConfig};
use fluxpm_experiments::sharded::sharded_storm;
use std::hint::black_box;

fn bench_storm_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_sharded");
    for &shards in &[1usize, 2, 4, 8] {
        let cfg = shard_scaling_config(128, shards, 42);
        g.bench_with_input(
            BenchmarkId::new("storm_128", format!("{shards}shards")),
            &cfg,
            |b, cfg| b.iter(|| black_box(sharded_storm(cfg))),
        );
    }
    g.finish();
}

fn bench_fleet(c: &mut Criterion) {
    let cfg = shard_fleet_config(10_000, 8, 42);
    c.bench_function("sim_sharded/fleet_10k/8shards", |b| {
        b.iter(|| black_box(sharded_storm(&cfg)))
    });
}

fn bench_world_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_world_sharded");
    g.sample_size(10);
    for &shards in &[1usize, 2, 4] {
        let cfg = FullShardConfig::congested(64, shards, 42);
        g.bench_with_input(
            BenchmarkId::new("storm_64", format!("{shards}shards")),
            &cfg,
            |b, cfg| b.iter(|| black_box(full_shard_run(cfg))),
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_storm_scaling,
    bench_fleet,
    bench_world_scaling
);
criterion_main!(benches);
