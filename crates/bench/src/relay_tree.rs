//! Relay-topology workload: an in-memory TBON of [`RelayPlane`] +
//! [`TelemetryHub`] pairs, driving the exact per-edge fan-out code the
//! broker relays run in simulation — minus the event engine, so the
//! numbers isolate the relay hot path itself.
//!
//! The tree is the standard k-ary heap layout (children of `i` are
//! `k*i + 1 ..= k*i + k`). Subscribers attach round-robin at the
//! leaves with match-everything filters; aggregates are computed
//! bottom-up exactly as the in-sim advert climb would settle them. A
//! publish sweep offers one delta per tree node at the root and
//! cascades each flushed [`fluxpm_monitor::RelayDeltaBatch`]
//! breadth-first down the
//! interested edges, ingesting into every hub along the way.
//!
//! Two properties the committed baseline gates ride on:
//!
//! * the root's egress is per *edge*, not per subscriber — at most
//!   `fanout` wire messages per published delta, whether 1 000 or
//!   50 000 subscribers sit below;
//! * delivery latency in the simulated overlay is `depth` hops of
//!   [`fluxpm_flux::Tbon::DEFAULT_HOP_LATENCY_US`] each, so the
//!   percentiles here are a pure function of tree shape — reported to
//!   anchor the O(log n) scaling claim, not measured wall time.

use fluxpm_monitor::{
    AggregateFilter, RelayPlane, SubscriptionConfig, SubscriptionFilter, TelemetryDelta,
    TelemetryHub,
};
use std::collections::VecDeque;
use std::sync::Arc;

struct TreeNode {
    hub: TelemetryHub,
    plane: RelayPlane,
    depth: u32,
    subscribers: usize,
}

/// An in-memory relay tree with subscribers parked at its leaves.
pub struct RelayTree {
    nodes: Vec<TreeNode>,
    fanout: usize,
    subscribers: usize,
    next_seq: u64,
    now_us: u64,
}

impl RelayTree {
    /// Build a `node_count`-broker tree with the given fanout and park
    /// `subscribers` match-everything subscribers round-robin at the
    /// leaves. `queue_capacity` sizes each subscriber's bounded queue;
    /// eviction is disabled (shed-oldest is the scenario under
    /// sustained overrun, eviction is a hub concern measured
    /// elsewhere).
    pub fn new(
        node_count: usize,
        fanout: usize,
        subscribers: usize,
        queue_capacity: usize,
    ) -> RelayTree {
        assert!(node_count >= 1 && fanout >= 1);
        let config = SubscriptionConfig {
            queue_capacity,
            evict_after_drops: u64::MAX,
        };
        let mut nodes: Vec<TreeNode> = (0..node_count)
            .map(|i| TreeNode {
                hub: TelemetryHub::new(config),
                plane: RelayPlane::new(1024),
                depth: {
                    let mut d = 0;
                    let mut at = i;
                    while at > 0 {
                        at = (at - 1) / fanout;
                        d += 1;
                    }
                    d
                },
                subscribers: 0,
            })
            .collect();
        let leaves: Vec<usize> = (0..node_count)
            .filter(|&i| fanout * i + 1 >= node_count)
            .collect();
        for s in 0..subscribers {
            let leaf = leaves[s % leaves.len()];
            nodes[leaf].hub.subscribe(SubscriptionFilter::all());
            nodes[leaf].subscribers += 1;
        }
        // Settle the aggregates bottom-up, as the in-sim advert climb
        // would: a subtree's edge carries everything iff some leaf
        // below it holds a subscriber.
        let mut aggs: Vec<AggregateFilter> = nodes
            .iter()
            .map(|n| {
                if n.subscribers > 0 {
                    AggregateFilter::everything()
                } else {
                    AggregateFilter::empty()
                }
            })
            .collect();
        for i in (1..node_count).rev() {
            let parent = (i - 1) / fanout;
            let agg = aggs[i].clone();
            aggs[parent].union(&agg);
            nodes[parent].plane.set_child(i as u32, agg);
        }
        RelayTree {
            nodes,
            fanout,
            subscribers,
            next_seq: 0,
            now_us: 0,
        }
    }

    /// One publish sweep: a delta per tree node, each offered at the
    /// root and cascaded down every interested edge. Returns total
    /// subscriber-queue deliveries.
    pub fn publish_sweep(&mut self) -> u64 {
        self.now_us += 2_000_000;
        let mut deliveries = 0u64;
        for node in 0..self.nodes.len() as u32 {
            let delta = Arc::new(TelemetryDelta {
                seq: self.next_seq,
                node,
                timestamp_us: self.now_us,
                node_w: 900.0,
                job: None,
                link: None,
            });
            self.next_seq += 1;
            deliveries += self.nodes[0].hub.ingest(&delta) as u64;
            self.nodes[0].plane.offer(&delta);
            let mut queue: VecDeque<(usize, Vec<Arc<TelemetryDelta>>)> = self.nodes[0]
                .plane
                .flush()
                .into_iter()
                .map(|(c, b)| (c as usize, b.deltas))
                .collect();
            while let Some((at, batch)) = queue.pop_front() {
                let n = &mut self.nodes[at];
                for d in &batch {
                    deliveries += n.hub.ingest(d) as u64;
                    n.plane.offer(d);
                }
                for (c, b) in n.plane.flush() {
                    queue.push_back((c as usize, b.deltas));
                }
            }
        }
        deliveries
    }

    /// Deliveries a full sweep enqueues (every subscriber sees every
    /// node's delta).
    pub fn deliveries_per_sweep(&self) -> u64 {
        self.nodes.len() as u64 * self.subscribers as u64
    }

    /// Root egress counters: (wire messages, deltas carried, deltas
    /// offered).
    pub fn root_egress(&self) -> (u64, u64, u64) {
        let p = &self.nodes[0].plane;
        (p.egress_msgs(), p.egress_deltas(), p.offered())
    }

    /// The tree's fanout.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Deepest broker level.
    pub fn depth(&self) -> u32 {
        self.nodes.iter().map(|n| n.depth).max().unwrap_or(0)
    }

    /// Subscriber-weighted delivery-latency percentile in microseconds
    /// under the simulated overlay's per-hop latency: a subscriber at
    /// depth `d` sees every delta `d * hop_latency_us` after the root
    /// publishes it.
    pub fn latency_percentile_us(&self, q: f64, hop_latency_us: u64) -> u64 {
        let mut by_depth: Vec<(u32, u64)> = Vec::new();
        for n in &self.nodes {
            if n.subscribers > 0 {
                by_depth.push((n.depth, n.subscribers as u64));
            }
        }
        by_depth.sort_unstable();
        let total: u64 = by_depth.iter().map(|&(_, w)| w).sum();
        let target = ((total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (depth, w) in by_depth {
            seen += w;
            if seen >= target {
                return u64::from(depth) * hop_latency_us;
            }
        }
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_reaches_every_subscriber_with_per_edge_egress() {
        let mut tree = RelayTree::new(64, 8, 1_000, 64);
        assert_eq!(tree.depth(), 2);
        let delivered = tree.publish_sweep();
        assert_eq!(delivered, tree.deliveries_per_sweep());
        let (msgs, deltas, offered) = tree.root_egress();
        assert_eq!(offered, 64);
        assert_eq!(deltas, 64 * tree.fanout() as u64);
        assert!(
            msgs <= offered * tree.fanout() as u64,
            "egress is per edge: {msgs} msgs for {offered} deltas"
        );
    }

    #[test]
    fn latency_percentiles_follow_tree_depth() {
        let tree = RelayTree::new(256, 8, 10_000, 64);
        assert_eq!(tree.depth(), 3);
        let p50 = tree.latency_percentile_us(0.50, 20);
        let p99 = tree.latency_percentile_us(0.99, 20);
        assert!(p50 >= 40 && p99 <= 60, "p50={p50} p99={p99}");
        assert!(p50 <= p99);
    }
}
