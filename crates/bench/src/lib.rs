//! # fluxpm-bench — criterion benchmarks
//!
//! This crate carries no library code; its benchmark targets are:
//!
//! * `paper_artifacts` — one benchmark per paper table/figure, running a
//!   size-reduced version of the corresponding experiment scenario,
//! * `ablations` — the design-choice ablations from DESIGN.md (FFT
//!   kernels, period estimators, ring buffer, event engine, TBON fan-out,
//!   FPP controller, power resolution).
//!
//! Run with `cargo bench -p fluxpm-bench`.

#![warn(missing_docs)]
