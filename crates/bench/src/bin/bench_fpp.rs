//! Regenerate `BENCH_fpp.json`, the committed FPP-analytics
//! performance baseline.
//!
//! Run from the repository root:
//!
//! ```sh
//! cargo run --release -p fluxpm-bench --bin bench_fpp > BENCH_fpp.json
//! ```
//!
//! Measures, on this machine, planned (cached FFT plans + scratch
//! arena + zero-copy ring views) against unplanned (per-call planning,
//! per-call allocation) analytics:
//!
//! * per-estimate wall time for single-window period estimation at
//!   n = 15 (Bluestein), 64, and 1024 (radix-2);
//! * Welch-averaged estimation at the production segment shapes
//!   (180-sample double epoch / 90-sample segments, and 1024 / 128);
//! * one node's Welch-mode per-GPU epoch analysis (8 GPUs × 90 samples
//!   at 1 Hz), the paper's Algorithm 1 analysis step — this is the
//!   number the ≥3× acceptance gate holds;
//! * heap allocations per call on both stacks, via a counting global
//!   allocator — the planned steady-state counts must be zero.
//!
//! Unlike `bench_sim` (whose pre-PR stack had to be recorded, because
//! the optimized engine replaced it), both FPP analytics stacks live in
//! the tree — `fluxpm_fft`'s unplanned functions *are* the pre-PR
//! path — so every speedup here is measured live on every run.

use fluxpm_bench::fpp::{
    epoch_signal, planned_estimate, planned_welch, unplanned_estimate, unplanned_welch, FppEpochRig,
};
use fluxpm_fft::PeriodAnalyzer;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::fmt::Write as _;
use std::time::Instant;

/// System allocator wrapper counting allocations on this thread.
struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

// SAFETY: delegates every operation to `System` unchanged.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Allocation count of one `f()` call on this thread.
fn allocs_during(mut f: impl FnMut()) -> u64 {
    let before = ALLOCS.with(|c| c.get());
    f();
    ALLOCS.with(|c| c.get()) - before
}

/// Wall time of `f()` in seconds, best of `reps` runs (best-of defeats
/// scheduler noise better than the mean for short single-thread work).
fn best_of<R>(reps: u32, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Per-call nanoseconds for `f()`, amortized over `iters` calls.
fn per_call_ns<R>(reps: u32, iters: u32, mut f: impl FnMut() -> R) -> f64 {
    best_of(reps, || {
        for _ in 0..iters {
            std::hint::black_box(f());
        }
    }) * 1e9
        / iters as f64
}

fn main() {
    let mut analyzer = PeriodAnalyzer::new();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"fluxpm-bench-fpp/v1\",\n");
    out.push_str(
        "  \"regenerate\": \"cargo run --release -p fluxpm-bench --bin bench_fpp > BENCH_fpp.json\",\n",
    );

    // Single-window period estimation at the three plan shapes FPP
    // meets in practice: tiny Bluestein, mid radix-2, large radix-2.
    out.push_str("  \"estimate_period_ns\": {\n");
    for (i, &n) in [15usize, 64, 1024].iter().enumerate() {
        let x = epoch_signal(n, (n as f64 / 8.0).max(4.0), 7);
        // Warm-up: populate the plan cache and fault in code paths.
        assert_eq!(
            planned_estimate(&mut analyzer, &x).is_some(),
            unplanned_estimate(&x).is_some(),
            "stacks disagree at n={n}"
        );
        let iters = if n >= 1024 { 200 } else { 2_000 };
        let planned = per_call_ns(7, iters, || planned_estimate(&mut analyzer, &x));
        let unplanned = per_call_ns(7, iters, || unplanned_estimate(&x));
        let _ = writeln!(out, "    \"n{n}\": {{");
        let _ = writeln!(out, "      \"planned\": {planned:.0},");
        let _ = writeln!(out, "      \"unplanned\": {unplanned:.0},");
        let _ = writeln!(out, "      \"speedup\": {:.2}", unplanned / planned);
        let _ = writeln!(out, "    }}{}", if i < 2 { "," } else { "" });
    }
    out.push_str("  },\n");

    // Welch-averaged estimation at production segment shapes.
    out.push_str("  \"welch_ns\": {\n");
    for (i, &(n, seg)) in [(180usize, 90usize), (1024, 128)].iter().enumerate() {
        let x = epoch_signal(n, 12.0, 11);
        assert_eq!(
            planned_welch(&mut analyzer, &x, seg).is_some(),
            unplanned_welch(&x, seg).is_some(),
            "stacks disagree at n={n} seg={seg}"
        );
        let planned = per_call_ns(7, 500, || planned_welch(&mut analyzer, &x, seg));
        let unplanned = per_call_ns(7, 500, || unplanned_welch(&x, seg));
        let _ = writeln!(out, "    \"n{n}_seg{seg}\": {{");
        let _ = writeln!(out, "      \"planned\": {planned:.0},");
        let _ = writeln!(out, "      \"unplanned\": {unplanned:.0},");
        let _ = writeln!(out, "      \"speedup\": {:.2}", unplanned / planned);
        let _ = writeln!(out, "    }}{}", if i < 1 { "," } else { "" });
    }
    out.push_str("  },\n");

    // The gated number: one node's Welch-mode per-GPU epoch analysis,
    // production shape (8 GPUs x 90 samples at 1 Hz, Welch with
    // single-window fallback per Algorithm 1).
    let mut rig = FppEpochRig::new(8, 90, 3);
    rig.verify_agreement();
    let epoch_planned = per_call_ns(7, 200, || rig.planned_epoch());
    let epoch_unplanned = per_call_ns(7, 200, || rig.unplanned_epoch());
    let epoch_speedup = epoch_unplanned / epoch_planned;
    out.push_str("  \"fpp_epoch_welch_8gpu\": {\n");
    out.push_str("    \"gpus\": 8,\n");
    out.push_str("    \"samples_per_gpu\": 90,\n");
    let _ = writeln!(out, "    \"planned_ns\": {epoch_planned:.0},");
    let _ = writeln!(out, "    \"unplanned_ns\": {epoch_unplanned:.0},");
    let _ = writeln!(out, "    \"speedup\": {epoch_speedup:.2}");
    out.push_str("  },\n");

    // Steady-state allocations per call: the planned stack must be
    // allocation-free after warm-up; the unplanned stack plans and
    // allocates on every call.
    let x90 = epoch_signal(90, 11.0, 5);
    let x180 = epoch_signal(180, 12.0, 11);
    planned_estimate(&mut analyzer, &x90);
    planned_welch(&mut analyzer, &x180, 90);
    let a_est_planned = allocs_during(|| {
        planned_estimate(&mut analyzer, &x90);
    });
    let a_est_unplanned = allocs_during(|| {
        unplanned_estimate(&x90);
    });
    let a_welch_planned = allocs_during(|| {
        planned_welch(&mut analyzer, &x180, 90);
    });
    let a_welch_unplanned = allocs_during(|| {
        unplanned_welch(&x180, 90);
    });
    let a_epoch_planned = allocs_during(|| {
        rig.planned_epoch();
    });
    let a_epoch_unplanned = allocs_during(|| {
        rig.unplanned_epoch();
    });
    out.push_str("  \"allocs_per_call\": {\n");
    let _ = writeln!(
        out,
        "    \"estimate_period_n90\": {{ \"planned\": {a_est_planned}, \"unplanned\": {a_est_unplanned} }},"
    );
    let _ = writeln!(
        out,
        "    \"welch_n180_seg90\": {{ \"planned\": {a_welch_planned}, \"unplanned\": {a_welch_unplanned} }},"
    );
    let _ = writeln!(
        out,
        "    \"epoch_8gpu\": {{ \"planned\": {a_epoch_planned}, \"unplanned\": {a_epoch_unplanned} }}"
    );
    out.push_str("  }\n");
    out.push_str("}\n");
    print!("{out}");

    // The acceptance gates travel with the generator: regenerating the
    // baseline must fail loudly if the planned stack loses its edge or
    // starts allocating, not silently commit a regression.
    assert!(
        epoch_speedup >= 3.0,
        "Welch-mode per-epoch FPP analysis speedup fell below 3x ({epoch_speedup:.2}x)"
    );
    assert_eq!(
        (a_est_planned, a_welch_planned, a_epoch_planned),
        (0, 0, 0),
        "planned paths must be allocation-free after warm-up"
    );
    assert!(
        a_est_unplanned > 0 && a_welch_unplanned > 0 && a_epoch_unplanned > 0,
        "unplanned paths are expected to allocate (counter sanity check)"
    );
}
