//! Regenerate `BENCH_telemetry.json`, the committed subscription
//! fan-out baseline.
//!
//! Run from the repository root:
//!
//! ```sh
//! cargo run --release -p fluxpm-bench --bin bench_telemetry > BENCH_telemetry.json
//! ```
//!
//! Measures, on this machine, the `TelemetryHub` fan-out core that the
//! monitor's root agent runs on every pushed sample:
//!
//! * delta deliveries/sec into 1 000 and 5 000 concurrent unfiltered
//!   subscribers (every publish lands in every queue), and the per
//!   subscriber-delivery overhead in nanoseconds;
//! * selective fan-out: 1 000 subscribers each pinned to one of 64
//!   nodes, so ~1/64 match per publish — the filter-rejection cost;
//! * poll drain throughput (consumer side of the bounded queues);
//! * backpressure under a permanently slow fleet: publish rate with
//!   full queues shedding oldest, and the eviction sweep cost.
//!
//! It also measures the TBON-distributed relay plane
//! ([`fluxpm_bench::relay_tree`]): 64- and 256-broker trees with 1 k,
//! 10 k, and 50 k subscribers parked round-robin at the leaves. The
//! relay gates assert the tentpole's two structural claims — root
//! egress stays at most `fanout` wire messages per published delta
//! regardless of subscriber count, and 10 k subscribers are fanned out
//! through the tree at better than 4 µs per subscriber-delivery. The
//! reported latency percentiles are a pure function of tree depth
//! times the simulated overlay's per-hop latency, anchoring the
//! O(log n) delivery-latency claim.
//!
//! The committed file is a trajectory anchor, not a portable constant —
//! absolute numbers vary by machine. The gate asserts the *shape*:
//! thousands of live subscribers at better than 4 µs per delivery.

use fluxpm_bench::relay_tree::RelayTree;
use fluxpm_flux::Tbon;
use fluxpm_monitor::{SubscriberId, SubscriptionConfig, SubscriptionFilter, TelemetryHub};
use std::fmt::Write as _;
use std::time::Instant;

/// Wall time of `f()` in seconds, best of `reps` runs.
fn best_of<R>(reps: u32, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

const NODES: u32 = 64;

/// A hub with `subs` live subscribers; unfiltered unless `pin_nodes`,
/// in which case subscriber i watches only node i % NODES.
fn hub_with(subs: usize, pin_nodes: bool, capacity: usize) -> (TelemetryHub, Vec<SubscriberId>) {
    let mut hub = TelemetryHub::new(SubscriptionConfig {
        queue_capacity: capacity,
        // Never evict during throughput runs: loss is the scenario,
        // eviction is measured separately.
        evict_after_drops: u64::MAX,
    });
    let ids = (0..subs)
        .map(|i| {
            let filter = if pin_nodes {
                SubscriptionFilter::all().with_nodes(vec![i as u32 % NODES])
            } else {
                SubscriptionFilter::all()
            };
            hub.subscribe(filter)
        })
        .collect();
    (hub, ids)
}

/// Publish `rounds` sweeps over all nodes; returns deliveries enqueued.
fn publish_rounds(hub: &mut TelemetryHub, rounds: u64) -> u64 {
    let mut deliveries = 0u64;
    for r in 0..rounds {
        for node in 0..NODES {
            deliveries += hub.publish(node, r * 2_000_000, 900.0, None) as u64;
        }
    }
    deliveries
}

fn main() {
    // --- Broadcast fan-out at 1k and 5k subscribers -------------------
    // Queues sized to hold a full measurement run, so the shed path
    // stays cold and this measures pure enqueue fan-out.
    let fanout = |subs: usize, rounds: u64| -> (u64, f64) {
        let (mut hub, _ids) = hub_with(subs, false, (rounds as usize) * NODES as usize);
        publish_rounds(&mut hub, 1); // warm
        let expect = rounds * NODES as u64 * subs as u64;
        let wall = best_of(5, || {
            let (mut hub, _ids) = hub_with(subs, false, (rounds as usize) * NODES as usize);
            assert_eq!(publish_rounds(&mut hub, rounds), expect);
        });
        // Subtract nothing: setup cost is part of the guard band, the
        // committed number is conservative.
        (expect, wall)
    };
    let (deliv_1k, wall_1k) = fanout(1_000, 8);
    let (deliv_5k, wall_5k) = fanout(5_000, 4);
    let rate_1k = deliv_1k as f64 / wall_1k;
    let rate_5k = deliv_5k as f64 / wall_5k;
    let ns_per_delivery_1k = wall_1k * 1e9 / deliv_1k as f64;
    let ns_per_delivery_5k = wall_5k * 1e9 / deliv_5k as f64;

    // --- Selective fan-out: ~1/64 of subscribers match ----------------
    let (mut hub, _ids) = hub_with(1_000, true, 4_096);
    publish_rounds(&mut hub, 1);
    let sel_rounds = 64u64;
    let sel_deliv = publish_rounds(&mut hub, sel_rounds);
    let sel_wall = best_of(5, || {
        let (mut hub, _ids) = hub_with(1_000, true, 4_096);
        publish_rounds(&mut hub, sel_rounds)
    });
    let sel_publishes = sel_rounds * NODES as u64;
    let sel_ns_per_publish = sel_wall * 1e9 / sel_publishes as f64;

    // --- Poll drain ---------------------------------------------------
    let drain_wall = best_of(5, || {
        let (mut hub, ids) = hub_with(1_000, false, 512);
        publish_rounds(&mut hub, 8);
        let mut drained = 0usize;
        for &id in &ids {
            while let Some((deltas, _)) = hub.poll(id, 128) {
                if deltas.is_empty() {
                    break;
                }
                drained += deltas.len();
            }
        }
        assert_eq!(drained as u64, 8 * NODES as u64 * 1_000);
        drained
    });
    let drained = 8u64 * NODES as u64 * 1_000;
    let drain_rate = drained as f64 / drain_wall;

    // --- Backpressure: full queues shedding oldest --------------------
    let shed_rounds = 16u64;
    let shed_wall = best_of(5, || {
        let (mut hub, _ids) = hub_with(1_000, false, 8);
        publish_rounds(&mut hub, shed_rounds)
    });
    let shed_publishes = shed_rounds * NODES as u64;
    let shed_ns_per_publish = shed_wall * 1e9 / shed_publishes as f64;

    // --- Eviction sweep: slow fleet aged out --------------------------
    let evicted = {
        let mut hub = TelemetryHub::new(SubscriptionConfig {
            queue_capacity: 4,
            evict_after_drops: 32,
        });
        for _ in 0..1_000 {
            hub.subscribe(SubscriptionFilter::all());
        }
        publish_rounds(&mut hub, 64);
        assert_eq!(hub.subscriber_count(), 0, "slow fleet fully evicted");
        hub.evicted()
    };

    // --- Relay topology: per-edge fan-out through a broker tree -------
    const RELAY_FANOUT: usize = 8;
    struct RelayRun {
        subscribers: usize,
        deliveries: u64,
        rate: f64,
        ns_per_delivery: f64,
    }
    struct RelayTreeReport {
        nodes: usize,
        depth: u32,
        egress_msgs_per_delta: f64,
        p50_us: u64,
        p99_us: u64,
        runs: Vec<RelayRun>,
    }
    let relay_tree_report = |node_count: usize| -> RelayTreeReport {
        let runs = [(1_000usize, 8u64), (10_000, 4), (50_000, 1)]
            .iter()
            .map(|&(subs, rounds)| {
                let cap = rounds as usize * node_count;
                let expect = rounds * node_count as u64 * subs as u64;
                let wall = best_of(3, || {
                    let mut tree = RelayTree::new(node_count, RELAY_FANOUT, subs, cap);
                    let mut delivered = 0u64;
                    for _ in 0..rounds {
                        delivered += tree.publish_sweep();
                    }
                    assert_eq!(delivered, expect, "every subscriber sees every delta");
                });
                RelayRun {
                    subscribers: subs,
                    deliveries: expect,
                    rate: expect as f64 / wall,
                    ns_per_delivery: wall * 1e9 / expect as f64,
                }
            })
            .collect();
        let mut tree = RelayTree::new(node_count, RELAY_FANOUT, 10_000, node_count);
        tree.publish_sweep();
        let (msgs, _, offered) = tree.root_egress();
        RelayTreeReport {
            nodes: node_count,
            depth: tree.depth(),
            egress_msgs_per_delta: msgs as f64 / offered as f64,
            p50_us: tree.latency_percentile_us(0.50, Tbon::DEFAULT_HOP_LATENCY_US),
            p99_us: tree.latency_percentile_us(0.99, Tbon::DEFAULT_HOP_LATENCY_US),
            runs,
        }
    };
    let relay_trees = [relay_tree_report(64), relay_tree_report(256)];

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"fluxpm-bench-telemetry/v1\",\n");
    out.push_str(
        "  \"regenerate\": \"cargo run --release -p fluxpm-bench --bin bench_telemetry > BENCH_telemetry.json\",\n",
    );
    let _ = writeln!(out, "  \"nodes\": {NODES},");
    out.push_str("  \"broadcast_fanout\": {\n");
    out.push_str("    \"subscribers_1k\": {\n");
    let _ = writeln!(out, "      \"subscribers\": 1000,");
    let _ = writeln!(out, "      \"deliveries\": {deliv_1k},");
    let _ = writeln!(out, "      \"deliveries_per_sec\": {:.0},", rate_1k);
    let _ = writeln!(
        out,
        "      \"ns_per_subscriber_delivery\": {:.1}",
        ns_per_delivery_1k
    );
    out.push_str("    },\n");
    out.push_str("    \"subscribers_5k\": {\n");
    let _ = writeln!(out, "      \"subscribers\": 5000,");
    let _ = writeln!(out, "      \"deliveries\": {deliv_5k},");
    let _ = writeln!(out, "      \"deliveries_per_sec\": {:.0},", rate_5k);
    let _ = writeln!(
        out,
        "      \"ns_per_subscriber_delivery\": {:.1}",
        ns_per_delivery_5k
    );
    out.push_str("    }\n");
    out.push_str("  },\n");
    out.push_str("  \"selective_fanout\": {\n");
    let _ = writeln!(out, "    \"subscribers\": 1000,");
    let _ = writeln!(out, "    \"matching_fraction\": {:.4},", 1.0 / NODES as f64);
    let _ = writeln!(out, "    \"deliveries\": {sel_deliv},");
    let _ = writeln!(out, "    \"ns_per_publish\": {:.0}", sel_ns_per_publish);
    out.push_str("  },\n");
    out.push_str("  \"poll_drain\": {\n");
    let _ = writeln!(out, "    \"deltas_drained\": {drained},");
    let _ = writeln!(out, "    \"deltas_per_sec\": {:.0}", drain_rate);
    out.push_str("  },\n");
    out.push_str("  \"backpressure\": {\n");
    let _ = writeln!(out, "    \"queue_capacity\": 8,");
    let _ = writeln!(
        out,
        "    \"ns_per_publish_full_queues\": {:.0},",
        shed_ns_per_publish
    );
    let _ = writeln!(out, "    \"slow_fleet_evicted\": {evicted}");
    out.push_str("  },\n");
    out.push_str("  \"relay_topology\": {\n");
    let _ = writeln!(out, "    \"fanout\": {RELAY_FANOUT},");
    let _ = writeln!(
        out,
        "    \"hop_latency_us\": {},",
        Tbon::DEFAULT_HOP_LATENCY_US
    );
    out.push_str("    \"trees\": [\n");
    for (t, tree) in relay_trees.iter().enumerate() {
        out.push_str("      {\n");
        let _ = writeln!(out, "        \"nodes\": {},", tree.nodes);
        let _ = writeln!(out, "        \"depth\": {},", tree.depth);
        let _ = writeln!(
            out,
            "        \"root_egress_msgs_per_delta\": {:.1},",
            tree.egress_msgs_per_delta
        );
        let _ = writeln!(out, "        \"latency_p50_us\": {},", tree.p50_us);
        let _ = writeln!(out, "        \"latency_p99_us\": {},", tree.p99_us);
        out.push_str("        \"fanout_runs\": [\n");
        for (r, run) in tree.runs.iter().enumerate() {
            let _ = writeln!(
                out,
                "          {{ \"subscribers\": {}, \"deliveries\": {}, \"deliveries_per_sec\": {:.0}, \"ns_per_subscriber_delivery\": {:.1} }}{}",
                run.subscribers,
                run.deliveries,
                run.rate,
                run.ns_per_delivery,
                if r + 1 < tree.runs.len() { "," } else { "" }
            );
        }
        out.push_str("        ]\n");
        let _ = writeln!(
            out,
            "      }}{}",
            if t + 1 < relay_trees.len() { "," } else { "" }
        );
    }
    out.push_str("    ]\n");
    out.push_str("  },\n");
    out.push_str("  \"gate\": {\n");
    out.push_str("    \"rule\": \"1k and 5k broadcast fan-out sustained at <= 4000 ns per subscriber-delivery (>= 250k deliveries/sec)\",\n");
    out.push_str("    \"relay_rule\": \"root egress <= fanout wire messages per published delta at every tree size and subscriber count; 10k-subscriber relay fan-out sustained at <= 4000 ns per subscriber-delivery\"\n");
    out.push_str("  }\n");
    out.push_str("}\n");
    print!("{out}");

    for tree in &relay_trees {
        assert!(
            tree.egress_msgs_per_delta <= RELAY_FANOUT as f64,
            "{}-broker tree: root egress must be per edge, got {:.2} msgs/delta",
            tree.nodes,
            tree.egress_msgs_per_delta
        );
        let ten_k = tree
            .runs
            .iter()
            .find(|r| r.subscribers == 10_000)
            .expect("10k-subscriber run present");
        assert!(
            ten_k.ns_per_delivery <= 4_000.0,
            "{}-broker tree: 10k-subscriber relay fan-out regressed: {:.0} ns/delivery",
            tree.nodes,
            ten_k.ns_per_delivery
        );
    }

    // The acceptance gate travels with the generator: a regeneration
    // that cannot hold thousands of subscribers at production rates
    // must fail loudly, not silently commit a regression.
    assert!(
        ns_per_delivery_1k <= 4_000.0 && rate_1k >= 250_000.0,
        "1k-subscriber fan-out regressed: {ns_per_delivery_1k:.0} ns/delivery, {rate_1k:.0}/s"
    );
    assert!(
        ns_per_delivery_5k <= 4_000.0 && rate_5k >= 250_000.0,
        "5k-subscriber fan-out regressed: {ns_per_delivery_5k:.0} ns/delivery, {rate_5k:.0}/s"
    );
    assert!(
        evicted == 1_000,
        "eviction sweep must age out the whole slow fleet"
    );
}
