//! Diagnostic: decompose shard-scaling wall time into compute vs
//! window coordination. Not part of the committed baseline — run it
//! when the `sim_sharded` curve looks off:
//!
//! ```sh
//! cargo run --release -p fluxpm-bench --bin shard_probe
//! ```

use fluxpm_bench::workload::shard_scaling_config;
use fluxpm_experiments::sharded::sharded_storm;
use std::time::Instant;

fn wall(cfg: &fluxpm_flux::shard::ShardStormConfig) -> (f64, u64, u64) {
    let t = Instant::now();
    let out = sharded_storm(cfg);
    (t.elapsed().as_secs_f64(), out.windows, out.events)
}

fn main() {
    for &work in &[0u32, 1024, 16_384] {
        for &shards in &[1usize, 2, 4, 8] {
            let mut cfg = shard_scaling_config(128, shards, 42);
            cfg.work_per_tick = work;
            wall(&cfg); // warm-up
            let (s, windows, events) = wall(&cfg);
            println!(
                "work={work:6} shards={shards} wall={:8.2}ms windows={windows:5} \
                 events={events:8} ({:5.1}us/window)",
                s * 1e3,
                s * 1e6 / windows as f64
            );
        }
    }
}
