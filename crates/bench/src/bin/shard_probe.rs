//! Diagnostic: decompose shard-scaling wall time into compute vs
//! window coordination. Not part of the committed baseline — run it
//! when the `sim_sharded` or `sim_world_sharded` curve looks off:
//!
//! ```sh
//! cargo run --release -p fluxpm-bench --bin shard_probe
//! cargo run --release -p fluxpm-bench --bin shard_probe -- --full-fidelity
//! ```
//!
//! The default mode sweeps the lightweight storm world across shard
//! counts and per-tick work levels. `--full-fidelity` sweeps the real
//! monitor + manager stack instead and splits each point three ways:
//!
//! * **compute** — wall time the shards spent executing events inside
//!   their windows (summed across shards);
//! * **coordination** — everything else: window barriers, boundary
//!   encode/decode, thread wake-ups (`wall − max(shard busy)` on a
//!   parallel host; on a serialized host `wall − Σ busy`);
//! * **root-shard serialization** — shard 0's share of total compute.
//!   Shard 0 owns the root services (cluster/job managers, monitor
//!   root, StateLog), so its busy share is the Amdahl floor on how far
//!   the full-fidelity world can scale.

use fluxpm_bench::workload::shard_scaling_config;
use fluxpm_experiments::full_shard::{full_shard_run, FullShardConfig};
use fluxpm_experiments::sharded::sharded_storm;
use std::time::Instant;

fn wall(cfg: &fluxpm_flux::shard::ShardStormConfig) -> (f64, u64, u64) {
    let t = Instant::now();
    let out = sharded_storm(cfg);
    (t.elapsed().as_secs_f64(), out.windows, out.events)
}

fn storm_sweep() {
    for &work in &[0u32, 1024, 16_384] {
        for &shards in &[1usize, 2, 4, 8] {
            let mut cfg = shard_scaling_config(128, shards, 42);
            cfg.work_per_tick = work;
            wall(&cfg); // warm-up
            let (s, windows, events) = wall(&cfg);
            println!(
                "work={work:6} shards={shards} wall={:8.2}ms windows={windows:5} \
                 events={events:8} ({:5.1}us/window)",
                s * 1e3,
                s * 1e6 / windows as f64
            );
        }
    }
}

fn full_fidelity_sweep() {
    println!("full-fidelity 128-rank congested storm (real monitor + manager stack)");
    let mut reference = None;
    for &shards in &[1usize, 2, 4, 8] {
        let cfg = FullShardConfig::congested(128, shards, 42);
        full_shard_run(&cfg); // warm-up
        let t = Instant::now();
        let (_, out) = full_shard_run(&cfg);
        let wall = t.elapsed().as_secs_f64();
        let hash = out.trace_hash;
        match reference {
            None => reference = Some(hash),
            Some(h) => assert_eq!(h, hash, "shard count changed the run"),
        }
        let busy_sum: f64 = out.stats.shard_busy.iter().map(|d| d.as_secs_f64()).sum();
        let busy_max = out
            .stats
            .shard_busy
            .iter()
            .map(|d| d.as_secs_f64())
            .fold(0.0, f64::max);
        let busy_root = out.stats.shard_busy[0].as_secs_f64();
        let coord = (wall - busy_max).max(0.0);
        println!(
            "shards={shards} wall={:8.2}ms compute={:8.2}ms coord={:8.2}ms \
             root-share={:4.1}% windows={:5} boundary={:6} events={:8}",
            wall * 1e3,
            busy_sum * 1e3,
            coord * 1e3,
            100.0 * busy_root / busy_sum.max(1e-12),
            out.stats.coordinator.windows,
            out.stats.coordinator.boundary_msgs,
            out.stats.coordinator.events,
        );
    }
}

fn fleet_probe(ranks: u32) {
    let cfg = FullShardConfig::fleet(ranks, 8, 42);
    let t = Instant::now();
    let (_, out) = full_shard_run(&cfg);
    let wall = t.elapsed().as_secs_f64();
    println!(
        "fleet ranks={ranks} shards=8 wall={:8.2}ms records={} windows={} \
         boundary={} events={}",
        wall * 1e3,
        out.records,
        out.stats.coordinator.windows,
        out.stats.coordinator.boundary_msgs,
        out.stats.coordinator.events,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--fleet") {
        let ranks = args
            .get(i + 1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(100_000);
        fleet_probe(ranks);
    } else if args.iter().any(|a| a == "--full-fidelity") {
        full_fidelity_sweep();
    } else {
        storm_sweep();
    }
}
