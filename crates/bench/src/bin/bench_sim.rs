//! Regenerate `BENCH_sim.json`, the committed simulator-performance
//! baseline.
//!
//! Run from the repository root:
//!
//! ```sh
//! cargo run --release -p fluxpm-bench --bin bench_sim > BENCH_sim.json
//! ```
//!
//! Measures, on this machine:
//!
//! * engine ops/sec for the mixed churn workload on the optimized slab
//!   engine and the in-tree reference engine (same seeded program), and
//!   the live speedup between them;
//! * the sliced-drain driver pattern (poll `next_event_time`, then
//!   step), where the slab engine's O(1) lookup replaces the reference
//!   engine's O(pending) scan;
//! * per-hop overlay delivery cost from root → leaf echo round trips;
//! * wall time of the 128-rank chaos storms (standard and long
//!   horizon), against the recorded pre-optimization stack numbers;
//! * the shard-scaling curve: the identical 128-rank storm across
//!   1/2/4/8 worker-thread shards (trace-hash-checked, so every point
//!   computes the same thing), plus the 100k-rank fleet soak;
//! * the full-fidelity shard-scaling curve: the real monitor + manager
//!   stack (production node agents, proportional power manager, RPC
//!   retries, deterministic congestion) sharded across 1/2/4/8 worker
//!   threads, record-hash-checked at every point, plus a 100k-rank
//!   fleet soak of the same full stack.
//!
//! The `pre_pr` block is a *recorded* measurement of the full pre-PR
//! stack (map-based engine, `String` topics, eager per-sample JSON via
//! the standard formatter) taken on the same class of machine before
//! the optimization landed; the engine speedups above it are measured
//! live on every run. Absolute numbers vary by machine — the committed
//! file is a trajectory anchor, not a portable constant.

use fluxpm_bench::workload::{
    churn_baseline, churn_new, shard_fleet_config, shard_scaling_config, sliced_drain_baseline,
    sliced_drain_new, DeliveryRig,
};
use fluxpm_experiments::chaos::{storm, StormConfig};
use fluxpm_experiments::full_shard::{full_shard_run, FullShardConfig};
use fluxpm_experiments::sharded::sharded_storm;
use std::fmt::Write as _;
use std::time::Instant;

/// Wall time of `f()` in seconds, best of `reps` runs (best-of defeats
/// scheduler noise better than the mean for short single-thread work).
fn best_of<R>(reps: u32, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    // Warm-up: fault in code and allocator arenas at full scale — the
    // first storm on a cold process can run 40% slower than steady
    // state, enough to trip the speedup gate spuriously.
    churn_new(2_000, 42);
    churn_baseline(2_000, 42);
    storm(&StormConfig::new(128, 11));
    storm(&StormConfig::new(128, 11));

    // Engine churn: ops/sec on both engines, same program.
    const CHURN_N: usize = 20_000;
    let executed = churn_new(CHURN_N, 42);
    assert_eq!(
        executed,
        churn_baseline(CHURN_N, 42),
        "engines must execute identical programs"
    );
    let new_s = best_of(7, || churn_new(CHURN_N, 42));
    let base_s = best_of(7, || churn_baseline(CHURN_N, 42));
    let new_ops = executed as f64 / new_s;
    let base_ops = executed as f64 / base_s;

    // Sliced drain: the experiment-driver pattern of polling
    // `next_event_time` before every step — O(1) on the slab engine,
    // an O(pending) scan on the reference engine.
    const DRAIN_N: usize = 5_000;
    const DRAIN_SLICES: u64 = 50;
    let drained = sliced_drain_new(DRAIN_N, DRAIN_SLICES, 42);
    assert_eq!(
        drained,
        sliced_drain_baseline(DRAIN_N, DRAIN_SLICES, 42),
        "engines must drain identical programs"
    );
    let drain_new_s = best_of(7, || sliced_drain_new(DRAIN_N, DRAIN_SLICES, 42));
    let drain_base_s = best_of(3, || sliced_drain_baseline(DRAIN_N, DRAIN_SLICES, 42));

    // Delivery: echo round trip root -> deepest rank; per-hop cost is
    // the round trip divided by hops out + hops back.
    let mut rig = DeliveryRig::new(128);
    let hops = rig.hops();
    rig.roundtrip();
    let trips = 2_000u32;
    let rt_s = best_of(5, || {
        for _ in 0..trips {
            rig.roundtrip();
        }
    });
    let rt_ns = rt_s * 1e9 / trips as f64;
    let per_hop_ns = rt_ns / (2.0 * hops as f64);

    // 128-rank chaos storms. `pre_pr` values were measured on the
    // pre-optimization stack at the commit this PR branched from.
    let std_cfg = StormConfig::new(128, 7);
    let long_cfg = StormConfig::long(128, 21);
    let std_out = storm(&std_cfg);
    let std_s = best_of(5, || storm(&std_cfg));
    let long_s = best_of(3, || storm(&long_cfg));
    const PRE_PR_STD_S: f64 = 0.042;
    const PRE_PR_LONG_S: f64 = 0.198;

    // Shard scaling: the identical 128-rank storm (heavy per-tick
    // compute, merged trace invariant across all points — the hash
    // equality below proves every measurement computed the same thing)
    // across 1/2/4/8 worker-thread shards.
    let shard_counts = [1usize, 2, 4, 8];
    let mut shard_walls = [0.0f64; 4];
    let reference = sharded_storm(&shard_scaling_config(128, 1, 42));
    for (i, &shards) in shard_counts.iter().enumerate() {
        let cfg = shard_scaling_config(128, shards, 42);
        let out = sharded_storm(&cfg); // warm-up + invariance check
        assert_eq!(
            out.trace_hash, reference.trace_hash,
            "shard count must not change the storm"
        );
        shard_walls[i] = best_of(3, || sharded_storm(&cfg));
    }
    let speedup_4 = shard_walls[0] / shard_walls[2];
    // Parallel speedup needs parallel hardware: on hosts with fewer
    // than 4 cores the curve degenerates to pure coordination overhead,
    // so that is what gets gated there (see the asserts at the end).
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Fleet soak: 100k ranks on a fanout-16 TBON across 8 shards — the
    // "whole-machine chaos soak in seconds" headline number.
    let fleet_cfg = shard_fleet_config(100_000, 8, 42);
    let fleet_out = sharded_storm(&fleet_cfg);
    let fleet_s = best_of(2, || sharded_storm(&fleet_cfg));

    // Full-fidelity shard scaling: the real monitor + manager stack,
    // replicated control plane, deterministic congestion — across
    // 1/2/4/8 worker shards, record-hash-checked at every point.
    let mut world_walls = [0.0f64; 4];
    let mut world_root_share = 0.0f64;
    let (_, world_ref) = full_shard_run(&FullShardConfig::congested(128, 1, 42));
    for (i, &shards) in shard_counts.iter().enumerate() {
        let cfg = FullShardConfig::congested(128, shards, 42);
        let (_, out) = full_shard_run(&cfg); // warm-up + invariance check
        assert_eq!(
            out.trace_hash, world_ref.trace_hash,
            "shard count must not change the full-fidelity run"
        );
        if shards == 4 {
            let busy_sum: f64 = out.stats.shard_busy.iter().map(|d| d.as_secs_f64()).sum();
            world_root_share = out.stats.shard_busy[0].as_secs_f64() / busy_sum.max(1e-12);
        }
        world_walls[i] = best_of(3, || full_shard_run(&cfg));
    }
    let world_speedup_4 = world_walls[0] / world_walls[2];

    // Full-fidelity fleet soak: 100k ranks with the real stack at
    // relaxed cadences. One timed run — this is a capacity proof, not
    // a latency microbenchmark.
    let world_fleet_cfg = FullShardConfig::fleet(100_000, 8, 42);
    let world_fleet_t = Instant::now();
    let (_, world_fleet) = full_shard_run(&world_fleet_cfg);
    let world_fleet_s = world_fleet_t.elapsed().as_secs_f64();

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"fluxpm-bench-sim/v1\",\n");
    out.push_str(
        "  \"regenerate\": \"cargo run --release -p fluxpm-bench --bin bench_sim > BENCH_sim.json\",\n",
    );
    out.push_str("  \"engine_churn\": {\n");
    let _ = writeln!(out, "    \"events_executed\": {executed},");
    let _ = writeln!(out, "    \"slab_ops_per_sec\": {:.0},", new_ops);
    let _ = writeln!(out, "    \"baseline_ops_per_sec\": {:.0},", base_ops);
    let _ = writeln!(out, "    \"speedup\": {:.2}", new_ops / base_ops);
    out.push_str("  },\n");
    out.push_str("  \"sliced_drain\": {\n");
    let _ = writeln!(out, "    \"events_executed\": {drained},");
    let _ = writeln!(out, "    \"slab_wall_s\": {:.4},", drain_new_s);
    let _ = writeln!(out, "    \"baseline_wall_s\": {:.4},", drain_base_s);
    let _ = writeln!(out, "    \"speedup\": {:.2}", drain_base_s / drain_new_s);
    out.push_str("  },\n");
    out.push_str("  \"delivery\": {\n");
    let _ = writeln!(out, "    \"tree_nodes\": 128,");
    let _ = writeln!(out, "    \"route_hops\": {hops},");
    let _ = writeln!(out, "    \"echo_roundtrip_ns\": {:.0},", rt_ns);
    let _ = writeln!(out, "    \"per_hop_ns\": {:.0}", per_hop_ns);
    out.push_str("  },\n");
    out.push_str("  \"soak_128_rank\": {\n");
    let _ = writeln!(out, "    \"trace_hash\": {},", std_out.trace_hash);
    let _ = writeln!(out, "    \"standard_wall_s\": {:.4},", std_s);
    let _ = writeln!(out, "    \"long_wall_s\": {:.4},", long_s);
    let _ = writeln!(
        out,
        "    \"standard_speedup_vs_pre_pr\": {:.2},",
        PRE_PR_STD_S / std_s
    );
    let _ = writeln!(
        out,
        "    \"long_speedup_vs_pre_pr\": {:.2}",
        PRE_PR_LONG_S / long_s
    );
    out.push_str("  },\n");
    out.push_str("  \"sim_sharded\": {\n");
    let _ = writeln!(out, "    \"storm_ranks\": 128,");
    let _ = writeln!(out, "    \"host_cores\": {host_cores},");
    let _ = writeln!(
        out,
        "    \"gate\": \"{}\",",
        if host_cores >= 4 {
            "speedup >= 2x at 4 shards"
        } else {
            "coordination overhead <= 35% (host has < 4 cores)"
        }
    );
    let _ = writeln!(out, "    \"trace_hash\": {},", reference.trace_hash);
    for (i, &shards) in shard_counts.iter().enumerate() {
        let _ = writeln!(
            out,
            "    \"wall_s_{shards}_shards\": {:.4},",
            shard_walls[i]
        );
    }
    for (i, &shards) in shard_counts.iter().enumerate().skip(1) {
        let _ = writeln!(
            out,
            "    \"speedup_{shards}_shards\": {:.2},",
            shard_walls[0] / shard_walls[i]
        );
    }
    out.push_str("    \"fleet\": {\n");
    let _ = writeln!(out, "      \"ranks\": 100000,");
    let _ = writeln!(out, "      \"shards\": 8,");
    let _ = writeln!(out, "      \"events\": {},", fleet_out.events);
    let _ = writeln!(out, "      \"windows\": {},", fleet_out.windows);
    let _ = writeln!(out, "      \"boundary_msgs\": {},", fleet_out.boundary_msgs);
    let _ = writeln!(out, "      \"wall_s\": {:.4}", fleet_s);
    out.push_str("    }\n");
    out.push_str("  },\n");
    out.push_str("  \"sim_world_sharded\": {\n");
    let _ = writeln!(out, "    \"storm_ranks\": 128,");
    let _ = writeln!(out, "    \"host_cores\": {host_cores},");
    let _ = writeln!(
        out,
        "    \"gate\": \"{}\",",
        if host_cores >= 4 {
            "speedup >= 3x at 4 shards"
        } else {
            "serialized 4-shard replica overhead <= 3x (host has < 4 cores)"
        }
    );
    let _ = writeln!(out, "    \"record_hash\": {},", world_ref.trace_hash);
    let _ = writeln!(out, "    \"records\": {},", world_ref.records);
    for (i, &shards) in shard_counts.iter().enumerate() {
        let _ = writeln!(
            out,
            "    \"wall_s_{shards}_shards\": {:.4},",
            world_walls[i]
        );
    }
    for (i, &shards) in shard_counts.iter().enumerate().skip(1) {
        let _ = writeln!(
            out,
            "    \"speedup_{shards}_shards\": {:.2},",
            world_walls[0] / world_walls[i]
        );
    }
    let _ = writeln!(
        out,
        "    \"root_shard_compute_share_4_shards\": {:.2},",
        world_root_share
    );
    out.push_str("    \"fleet\": {\n");
    let _ = writeln!(out, "      \"ranks\": 100000,");
    let _ = writeln!(out, "      \"shards\": 8,");
    let _ = writeln!(out, "      \"records\": {},", world_fleet.records);
    let _ = writeln!(
        out,
        "      \"windows\": {},",
        world_fleet.stats.coordinator.windows
    );
    let _ = writeln!(
        out,
        "      \"boundary_msgs\": {},",
        world_fleet.stats.coordinator.boundary_msgs
    );
    let _ = writeln!(out, "      \"wall_s\": {:.4}", world_fleet_s);
    out.push_str("    }\n");
    out.push_str("  },\n");
    out.push_str("  \"pre_pr\": {\n");
    out.push_str(
        "    \"note\": \"full pre-optimization stack (map-based engine, String topics, standard-formatter JSON), same seeds, same machine class, release build\",\n",
    );
    let _ = writeln!(out, "    \"standard_wall_s\": {:.4},", PRE_PR_STD_S);
    let _ = writeln!(out, "    \"long_wall_s\": {:.4}", PRE_PR_LONG_S);
    out.push_str("  }\n");
    out.push_str("}\n");
    print!("{out}");

    // The acceptance gate travels with the generator: regenerating the
    // baseline on a machine where the optimized stack is not at least
    // 2x the recorded pre-PR numbers should fail loudly, not silently
    // commit a regression.
    assert!(
        PRE_PR_STD_S / std_s >= 2.0 && PRE_PR_LONG_S / long_s >= 2.0,
        "128-rank soak speedup fell below 2x (standard {:.2}x, long {:.2}x)",
        PRE_PR_STD_S / std_s,
        PRE_PR_LONG_S / long_s
    );
    // Shard-scaling gate. With real parallel hardware, 4 worker shards
    // must run the 128-rank storm at least 2x faster than one shard.
    // On a host without 4 cores no scheduler can deliver that, so the
    // gate degrades to the thing a starved host *can* measure: the
    // window protocol's coordination overhead must stay bounded (4
    // serialized shards at most 35% slower than one), which is what
    // guarantees the speedup materializes the moment cores exist.
    if host_cores >= 4 {
        assert!(
            speedup_4 >= 2.0,
            "shard scaling fell below 2x at 4 shards ({speedup_4:.2}x; \
             walls {shard_walls:?})"
        );
    } else {
        let overhead = shard_walls[2] / shard_walls[0] - 1.0;
        assert!(
            overhead <= 0.35,
            "window coordination overhead is {:.0}% on a {host_cores}-core \
             host (walls {shard_walls:?}) — the protocol got expensive",
            overhead * 100.0
        );
    }
    // And the fleet headline must hold: 100k ranks in seconds, not
    // minutes.
    assert!(
        fleet_s < 30.0,
        "100k-rank fleet soak took {fleet_s:.1}s — no longer 'seconds'"
    );
    // Full-fidelity shard-scaling gate, same host-aware shape. With
    // parallel hardware, sharding the real stack must pay: at least 3x
    // at 4 shards. A starved host can only measure the serialized cost
    // of running N replicas through the window protocol on one core —
    // that must stay within 3x of the single-shard run (measured ~2x on
    // a 1-core host: replicated control plane plus window barriers).
    if host_cores >= 4 {
        assert!(
            world_speedup_4 >= 3.0,
            "full-fidelity shard scaling fell below 3x at 4 shards \
             ({world_speedup_4:.2}x; walls {world_walls:?})"
        );
    } else {
        let serialized = world_walls[2] / world_walls[0];
        assert!(
            serialized <= 3.0,
            "serialized full-fidelity 4-shard overhead is {serialized:.2}x on a \
             {host_cores}-core host (walls {world_walls:?}) — the replica \
             model got expensive"
        );
    }
    // The full-stack fleet soak is a capacity gate, not a latency one:
    // 100k ranks with production agents must finish in minutes on any
    // host (measured ~45 s single-core).
    assert!(
        world_fleet_s < 120.0,
        "100k-rank full-fidelity fleet soak took {world_fleet_s:.1}s"
    );
}
