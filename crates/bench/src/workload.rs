//! Deterministic workloads shared by the `sim_hot_path` bench target
//! and the `bench_sim` baseline generator.
//!
//! The engine churn runs the *same* seeded program through the
//! optimized slab engine ([`fluxpm_sim::Engine`]) and the in-tree
//! reference engine ([`fluxpm_sim::BaselineEngine`]), so speedups are
//! measured live against the pre-optimization implementation rather
//! than trusted from a number recorded once.

use fluxpm_flux::shard::ShardStormConfig;
use fluxpm_flux::{payload, FaultPlan, Message, Module, ModuleCtx, MsgKind, Rank, Topic, World};
use fluxpm_hw::MachineKind;
use fluxpm_sim::{Engine, SimDuration, SimTime, Xoshiro256pp};
use std::cell::RefCell;
use std::ops::ControlFlow;
use std::rc::Rc;

/// Expand one engine-churn interpreter. The two engines expose
/// structurally identical APIs but their closure parameters are typed
/// per-engine, so a macro keeps the workloads textually identical (the
/// same trick as the `engine_equivalence` cross-check suite).
macro_rules! churn_impl {
    ($(#[$doc:meta])* $name:ident, $engine:ty) => {
        $(#[$doc])*
        ///
        /// Returns the number of events executed (identical across both
        /// engines for the same `(n, seed)` — asserted by
        /// `churn_workloads_agree`).
        pub fn $name(n: usize, seed: u64) -> u64 {
            let mut eng: $engine = <$engine>::new();
            let mut rng = Xoshiro256pp::seed_from_u64(seed);
            let mut ids = Vec::with_capacity(n);
            for i in 0..n {
                let at = SimTime::from_micros(rng.below(10_000_000));
                if i % 7 == 6 {
                    // Periodic task: four firings, then stop.
                    let interval = SimDuration::from_micros(1 + rng.below(500_000));
                    let mut left = 4u32;
                    ids.push(eng.schedule_every(at, interval, move |w: &mut u64, _e| {
                        *w += 1;
                        left -= 1;
                        if left == 0 {
                            ControlFlow::Break(())
                        } else {
                            ControlFlow::Continue(())
                        }
                    }));
                } else {
                    // One-shot; half of them schedule a nested follow-up
                    // (in-execution scheduling, the module-timer pattern).
                    let nested = i % 2 == 0;
                    ids.push(eng.schedule(at, move |w: &mut u64, e| {
                        *w += 1;
                        if nested {
                            e.schedule_in(SimDuration::from_micros(1000), |w: &mut u64, _e| {
                                *w += 1;
                            });
                        }
                    }));
                }
                // Every third op cancels a random earlier event — the
                // cancel storm is where lazy deletion hurts the
                // reference engine and eager removal pays off.
                if i % 3 == 0 {
                    let victim = ids[rng.below(ids.len() as u64) as usize];
                    eng.cancel(victim);
                }
            }
            let mut world = 0u64;
            eng.run(&mut world);
            eng.executed()
        }
    };
}

churn_impl!(
    /// Mixed schedule/cancel/periodic churn on the optimized slab engine.
    churn_new,
    Engine<u64>
);
churn_impl!(
    /// The identical churn on the reference (map + lazy-deletion) engine.
    churn_baseline,
    fluxpm_sim::BaselineEngine<u64>
);

/// Expand one sliced-drain interpreter: the experiment-driver pattern
/// of polling [`next_event_time`](Engine::next_event_time) to advance
/// tick by tick. `next_event_time` is O(1) on the slab engine and an
/// O(pending) scan on the reference engine — this workload prices that
/// difference under a realistic cancel load.
macro_rules! sliced_drain_impl {
    ($(#[$doc:meta])* $name:ident, $engine:ty) => {
        $(#[$doc])*
        ///
        /// Schedules `n` one-shots over 10 simulated seconds, cancels a
        /// third of them, then drains in `slices` cutoff steps, polling
        /// `next_event_time` before every event. Returns events executed.
        pub fn $name(n: usize, slices: u64, seed: u64) -> u64 {
            let mut eng: $engine = <$engine>::new();
            let mut rng = Xoshiro256pp::seed_from_u64(seed);
            let mut ids = Vec::with_capacity(n);
            for i in 0..n {
                let at = SimTime::from_micros(rng.below(10_000_000));
                ids.push(eng.schedule(at, |w: &mut u64, _e| *w += 1));
                if i % 3 == 0 {
                    let victim = ids[rng.below(ids.len() as u64) as usize];
                    eng.cancel(victim);
                }
            }
            let mut world = 0u64;
            for s in 1..=slices {
                let cut = SimTime::from_micros(s * 10_000_000 / slices);
                while eng.next_event_time().is_some_and(|t| t <= cut) {
                    eng.step(&mut world);
                }
            }
            eng.executed()
        }
    };
}

sliced_drain_impl!(
    /// Sliced drain on the optimized slab engine (O(1) `next_event_time`).
    sliced_drain_new,
    Engine<u64>
);
sliced_drain_impl!(
    /// Sliced drain on the reference engine (O(pending) `next_event_time`).
    sliced_drain_baseline,
    fluxpm_sim::BaselineEngine<u64>
);

/// The 128-rank shard-scaling storm: the chaos-soak traffic pattern
/// with per-tick compute cranked up so each rank's tick costs what a
/// real node agent's sampling + windowed analytics costs (tens of
/// microseconds), making compute — not window coordination — the thing
/// the shards parallelize. Used by the `sim_sharded` criterion group
/// and the `bench_sim` baseline generator; the merged trace stays
/// shard-count-invariant (asserted in tests below), so every point on
/// the scaling curve computes the identical storm.
pub fn shard_scaling_config(ranks: u32, shards: usize, seed: u64) -> ShardStormConfig {
    let mut cfg = ShardStormConfig::new(ranks, shards, seed);
    cfg.work_per_tick = 16_384;
    cfg
}

/// Fleet-scale soak config for benchmarks: 100k+ ranks, wide fanout,
/// light per-tick work (see [`ShardStormConfig::fleet`]).
pub fn shard_fleet_config(ranks: u32, shards: usize, seed: u64) -> ShardStormConfig {
    ShardStormConfig::fleet(ranks, shards, seed)
}

/// A module that answers `bench.echo` requests with their own payload —
/// the minimal responder for measuring raw overlay delivery cost.
struct BenchEcho;

impl Module for BenchEcho {
    fn name(&self) -> &'static str {
        "bench-echo"
    }
    fn topics(&self) -> Vec<Topic> {
        vec!["bench.echo".into()]
    }
    fn load(&mut self, _ctx: &mut ModuleCtx<'_>) {}
    fn handle(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Message) {
        if msg.kind == MsgKind::Request {
            ctx.world.respond(ctx.eng, msg, Rc::clone(&msg.payload));
        }
    }
}

/// A world + engine pair wired for delivery benchmarks: `nnodes` Lassen
/// nodes in a binary TBON with a `BenchEcho` responder on the last
/// (deepest) rank.
pub struct DeliveryRig {
    /// The Flux instance.
    pub world: World,
    /// Its engine.
    pub eng: Engine<World>,
    /// The echo responder's rank (the deepest rank of the tree).
    pub target: Rank,
}

impl DeliveryRig {
    /// Build the rig.
    pub fn new(nnodes: u32) -> DeliveryRig {
        let mut world = World::new(MachineKind::Lassen, nnodes, 1);
        let mut eng: Engine<World> = Engine::new();
        let target = Rank(nnodes - 1);
        assert!(world.load_module(&mut eng, target, Rc::new(RefCell::new(BenchEcho))));
        DeliveryRig { world, eng, target }
    }

    /// Hop count of the root → target route.
    pub fn hops(&self) -> u32 {
        let route = self
            .world
            .tbon
            .route(Rank(0), self.target)
            .expect("routable");
        route.len() as u32 - 1
    }

    /// Build the rig with the target's uplink congested at `severity`
    /// for the first simulated hour. Echo round trips then pay the
    /// link's serialization + queueing delay on the last hop both ways,
    /// which prices the congestion-aware delivery path (queue
    /// bookkeeping, severity lookup, EWMA updates) against the clean
    /// rig's fast path.
    pub fn congested(nnodes: u32, severity: f64) -> DeliveryRig {
        let mut rig = DeliveryRig::new(nnodes);
        let parent = rig
            .world
            .tbon
            .parent(rig.target)
            .expect("target has an uplink");
        let plan = FaultPlan::uniform(0.0, SimDuration::ZERO).with_congestion(
            parent,
            rig.target,
            SimTime::ZERO..SimTime::from_secs(3_600),
            severity,
        );
        rig.world.install_fault_plan(plan);
        rig
    }

    /// Issue one root → target echo RPC and drain the engine; panics if
    /// the response does not arrive (nothing in this rig drops traffic).
    pub fn roundtrip(&mut self) {
        let done = Rc::new(RefCell::new(false));
        let done2 = Rc::clone(&done);
        self.world
            .rpc(self.target, "bench.echo", payload(7u64))
            .send(&mut self.eng, move |_w, _e, resp| {
                assert!(resp.is_ok());
                *done2.borrow_mut() = true;
            });
        self.eng.run(&mut self.world);
        assert!(*done.borrow(), "echo response lost");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_workloads_agree() {
        for seed in [3, 17, 99] {
            assert_eq!(churn_new(400, seed), churn_baseline(400, seed));
        }
    }

    #[test]
    fn sliced_drain_workloads_agree() {
        for seed in [5, 23] {
            assert_eq!(
                sliced_drain_new(400, 20, seed),
                sliced_drain_baseline(400, 20, seed)
            );
        }
    }

    #[test]
    fn shard_scaling_workload_is_shard_count_invariant() {
        // Shrink the per-tick work so the invariance check stays cheap
        // in debug builds; the partitioning and traffic are unchanged.
        let mut one = shard_scaling_config(128, 1, 7);
        one.work_per_tick = 64;
        one.periods = 6;
        let reference = fluxpm_experiments::sharded::sharded_storm(&one);
        for shards in [2usize, 4] {
            let mut cfg = one;
            cfg.shards = shards;
            let out = fluxpm_experiments::sharded::sharded_storm(&cfg);
            assert_eq!(reference.trace_hash, out.trace_hash);
            assert_eq!(reference.records, out.records);
        }
    }

    #[test]
    fn delivery_rig_round_trips() {
        let mut rig = DeliveryRig::new(8);
        assert_eq!(rig.hops(), 3, "rank 7 sits three hops deep");
        rig.roundtrip();
        rig.roundtrip();
        assert_eq!(rig.world.pending_rpc_count(), 0);
    }

    #[test]
    fn congested_rig_pays_queueing_delay_on_the_last_hop() {
        let mut clean = DeliveryRig::new(8);
        let mut hot = DeliveryRig::congested(8, 0.999);
        clean.roundtrip();
        hot.roundtrip();
        assert!(
            hot.eng.now() > clean.eng.now(),
            "a 0.999-severity uplink must inflate the echo round trip \
             (clean {:?}, congested {:?})",
            clean.eng.now(),
            hot.eng.now()
        );
        assert_eq!(hot.world.pending_rpc_count(), 0);
    }
}
