//! Shared FPP analytics workloads for the `fpp_hot_path` benchmark and
//! the `bench_fpp` baseline generator.
//!
//! Both targets compare the same two stacks on the same signals:
//!
//! * **unplanned** — the pre-PR reference path: contiguous `Vec<f64>`
//!   epoch buffers fed to [`fluxpm_fft::estimate_period`] /
//!   [`fluxpm_fft::welch_estimate_period`], which replan twiddles,
//!   window coefficients, and Bluestein chirps on every call;
//! * **planned** — the allocation-free path: ring-backed epoch buffers
//!   read through a two-slice [`Samples`] view and analyzed by one
//!   shared [`PeriodAnalyzer`] (cached plans + scratch arena).
//!
//! The per-epoch rig mirrors production shape: one node manager's
//! per-GPU controllers running Welch-mode period detection over a 90 s
//! epoch at 1 Hz sampling, batched through a single analyzer.

use fluxpm_fft::{estimate_period, welch_estimate_period, PeriodAnalyzer, Samples};
use fluxpm_monitor::RingBuffer;

/// FPP's production sampling rate: 1 Hz (`sample_period_s = 1.0`).
pub const SAMPLE_RATE_HZ: f64 = 1.0;

/// Deterministic noisy square wave — the signal class FPP sees from
/// iteration-periodic GPU workloads. LCG-seeded so both stacks analyze
/// byte-identical traces.
pub fn epoch_signal(n: usize, period_s: f64, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    (0..n)
        .map(|t| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let noise = ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
            let base = if (t as f64 / period_s).fract() < 0.3 {
                150.0
            } else {
                60.0
            };
            base + 4.0 * noise
        })
        .collect()
}

/// One unplanned `estimate_period` call on a contiguous buffer — the
/// pre-PR per-epoch kernel.
pub fn unplanned_estimate(samples: &[f64]) -> Option<f64> {
    estimate_period(samples, SAMPLE_RATE_HZ).map(|e| e.period_seconds)
}

/// One planned `estimate_period` call through a shared analyzer.
pub fn planned_estimate(analyzer: &mut PeriodAnalyzer, samples: &[f64]) -> Option<f64> {
    analyzer
        .estimate_period(Samples::from(samples), SAMPLE_RATE_HZ)
        .map(|e| e.period_seconds)
}

/// One unplanned Welch estimate — the pre-PR Welch-mode kernel.
pub fn unplanned_welch(samples: &[f64], segment_len: usize) -> Option<f64> {
    welch_estimate_period(samples, SAMPLE_RATE_HZ, segment_len).map(|e| e.period_seconds)
}

/// One planned Welch estimate through a shared analyzer.
pub fn planned_welch(
    analyzer: &mut PeriodAnalyzer,
    samples: &[f64],
    segment_len: usize,
) -> Option<f64> {
    analyzer
        .welch_estimate_period(Samples::from(samples), SAMPLE_RATE_HZ, segment_len)
        .map(|e| e.period_seconds)
}

/// Per-epoch FPP analysis rig: one node's worth of per-GPU epoch
/// buffers holding the same signals in both layouts — contiguous `Vec`s
/// for the pre-PR path, wrapped `RingBuffer`s (written past one full
/// revolution so every read is a genuine two-slice view) for the
/// planned path.
#[derive(Debug)]
pub struct FppEpochRig {
    vecs: Vec<Vec<f64>>,
    rings: Vec<RingBuffer<f64>>,
    analyzer: PeriodAnalyzer,
    segment_len: usize,
}

impl FppEpochRig {
    /// `gpus` buffers of `n` samples each; `segment_len` follows FPP's
    /// production rule `(n / 2).max(8)`.
    pub fn new(gpus: usize, n: usize, seed: u64) -> FppEpochRig {
        let mut vecs = Vec::with_capacity(gpus);
        let mut rings = Vec::with_capacity(gpus);
        for gpu in 0..gpus {
            // Distinct period per GPU: plans for several lengths stay
            // hot at once, as in a real mixed-job node.
            let period = 9.0 + gpu as f64 * 1.5;
            let v = epoch_signal(n, period, seed.wrapping_add(gpu as u64));
            let mut ring = RingBuffer::new(n);
            // Fill 1.5 revolutions so the view wraps mid-buffer.
            for &s in v.iter().take(n / 2) {
                ring.push(s);
            }
            for &s in &v {
                ring.push(s);
            }
            vecs.push(v);
            rings.push(ring);
        }
        FppEpochRig {
            vecs,
            rings,
            analyzer: PeriodAnalyzer::new(),
            segment_len: (n / 2).max(8),
        }
    }

    /// Pre-PR per-epoch analysis: Welch with single-window fallback on
    /// each GPU's contiguous buffer, unplanned kernels throughout.
    /// Returns the number of GPUs with a detected period.
    pub fn unplanned_epoch(&self) -> usize {
        self.vecs
            .iter()
            .filter(|v| {
                welch_estimate_period(v, SAMPLE_RATE_HZ, self.segment_len)
                    .or_else(|| estimate_period(v, SAMPLE_RATE_HZ))
                    .is_some()
            })
            .count()
    }

    /// Planned per-epoch analysis: the same Welch-plus-fallback
    /// structure on zero-copy ring views through the one shared
    /// analyzer. Returns the number of GPUs with a detected period.
    pub fn planned_epoch(&mut self) -> usize {
        let analyzer = &mut self.analyzer;
        let segment_len = self.segment_len;
        self.rings
            .iter()
            .filter(|ring| {
                let (head, tail) = ring.as_slices();
                let view = Samples::new(head, tail);
                analyzer
                    .welch_estimate_period(view, SAMPLE_RATE_HZ, segment_len)
                    .or_else(|| analyzer.estimate_period(view, SAMPLE_RATE_HZ))
                    .is_some()
            })
            .count()
    }

    /// Both paths must agree on every GPU before timing means anything.
    pub fn verify_agreement(&mut self) {
        let planned = self.planned_epoch();
        let unplanned = self.unplanned_epoch();
        assert_eq!(
            planned, unplanned,
            "planned and unplanned epoch analysis disagree"
        );
        assert!(planned > 0, "rig signals must be detectable");
    }
}
