//! Property-based tests for the hardware power model.

use fluxpm_hw::capping::OpalState;
use fluxpm_hw::power::{resolve, PowerDemand};
use fluxpm_hw::{lassen, tioga, Watts};
use proptest::prelude::*;

prop_compose! {
    fn lassen_demand()(
        cpu in 60.0f64..190.0,
        gpu in 50.0f64..300.0,
        mem in 40.0f64..120.0,
    ) -> PowerDemand {
        let a = lassen();
        PowerDemand {
            cpu: vec![Watts(cpu); a.sockets],
            memory: Watts(mem),
            gpu: vec![Watts(gpu); a.gpus],
            other: a.other,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Draw never exceeds demand (capping only removes power).
    #[test]
    fn draw_never_exceeds_demand(
        d in lassen_demand(),
        gpu_cap in prop::option::of(100.0f64..300.0),
        node_cap in prop::option::of(500.0f64..3050.0),
    ) {
        let a = lassen();
        let caps: Vec<_> = (0..a.gpus).map(|_| gpu_cap.map(Watts)).collect();
        let draw = resolve(&a, &d, &caps, node_cap.map(Watts));
        prop_assert!(draw.total().get() <= d.total().get() + 1e-9);
    }

    /// Draw never falls below the architecture's idle floor.
    #[test]
    fn draw_never_below_idle(
        d in lassen_demand(),
        gpu_cap in prop::option::of(100.0f64..300.0),
        node_cap in prop::option::of(500.0f64..3050.0),
    ) {
        let a = lassen();
        let caps: Vec<_> = (0..a.gpus).map(|_| gpu_cap.map(Watts)).collect();
        let draw = resolve(&a, &d, &caps, node_cap.map(Watts));
        prop_assert!(draw.total().get() >= a.idle_node_power().get() - 1e-9);
    }

    /// A hard node cap at or above the hard minimum is honoured whenever
    /// the fixed (uncappable) components leave room.
    #[test]
    fn node_cap_honoured_when_feasible(
        d in lassen_demand(),
        node_cap in 1000.0f64..3050.0,
    ) {
        let a = lassen();
        // OPAL first derives GPU caps from the node cap, as on Lassen.
        let mut opal = OpalState::for_arch(&a).unwrap();
        opal.set_node_cap(Watts(node_cap));
        let derived = opal.derived_gpu_cap();
        let caps: Vec<_> = (0..a.gpus).map(|_| derived).collect();
        let draw = resolve(&a, &d, &caps, Some(Watts(node_cap)));
        // The only uncappable slack is memory+other+idle floors; with the
        // 936 W reserve the cap is always met at >= 1000 W.
        prop_assert!(
            draw.total().get() <= node_cap + 1e-9,
            "draw {} exceeds cap {node_cap}",
            draw.total()
        );
    }

    /// Throttle factors are in (0, 1] and consistent: throttled draw is
    /// strictly below demand only when throttle < 1.
    #[test]
    fn throttle_consistency(
        d in lassen_demand(),
        gpu_cap in 100.0f64..300.0,
    ) {
        let a = lassen();
        let caps: Vec<_> = (0..a.gpus).map(|_| Some(Watts(gpu_cap))).collect();
        let draw = resolve(&a, &d, &caps, None);
        for (i, &th) in draw.gpu_throttle.iter().enumerate() {
            prop_assert!((0.0..=1.0).contains(&th));
            if th < 1.0 {
                prop_assert!(draw.gpu[i] < d.gpu[i]);
            }
        }
        prop_assert!(draw.throttle.gpu_min <= draw.throttle.mean_gpu + 1e-12);
    }

    /// OPAL's derived GPU cap is monotone in the node cap and clamped.
    #[test]
    fn opal_monotone(caps in prop::collection::vec(500.0f64..3050.0, 2..20)) {
        let a = lassen();
        let mut opal = OpalState::for_arch(&a).unwrap();
        let mut pairs: Vec<(f64, f64)> = caps
            .iter()
            .map(|&c| {
                opal.set_node_cap(Watts(c));
                (c, opal.derived_gpu_cap().unwrap().get())
            })
            .collect();
        pairs.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap());
        for w in pairs.windows(2) {
            prop_assert!(w[0].1 <= w[1].1 + 1e-9);
        }
        for (_, g) in pairs {
            prop_assert!((100.0..=300.0).contains(&g));
        }
    }

    /// Tioga's conservative node estimate never exceeds the true draw.
    #[test]
    fn tioga_estimate_conservative(cpu in 90.0f64..280.0, gpu in 45.0f64..280.0) {
        use fluxpm_hw::{NodeHardware, NodeId, Sensors};
        let mut n = NodeHardware::new(NodeId(0), tioga(), 3);
        n.sensors = Sensors::new(&n.arch, 0).with_noise(0.0);
        let arch = n.arch.clone();
        n.set_demand(PowerDemand {
            cpu: vec![Watts(cpu); arch.sockets],
            memory: arch.mem_idle,
            gpu: vec![Watts(gpu); arch.gpus],
            other: arch.other,
        });
        let truth = n.draw().total();
        let est = n.read_sensors().node_power_estimate();
        prop_assert!(est.get() <= truth.get() + 1e-9);
    }
}
