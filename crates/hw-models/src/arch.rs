//! Node architecture descriptors.
//!
//! A [`NodeArch`] is the static description of a node type: how many
//! sockets and GPU devices it has, their idle/peak power envelopes, what
//! its sensors can see, and what its firmware can cap. The two concrete
//! architectures are the paper's evaluation machines:
//!
//! * [`lassen`] — IBM Power AC922: 2× Power9, 4× NVIDIA V100, OCC sensors
//!   at node/CPU/memory/GPU level, OPAL node capping + NVML GPU capping.
//! * [`tioga`] — HPE Cray EX235a: 1× AMD Trento, 4× MI250X OAMs (8 GCDs),
//!   CPU + per-OAM telemetry only, capping present in hardware but not
//!   enabled for users on the early-access system.

use crate::units::Watts;
use serde::{Deserialize, Serialize};

/// Which machine a node belongs to (shorthand used across the stack).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MachineKind {
    /// IBM Power AC922 (Lassen).
    Lassen,
    /// HPE Cray EX235a (Tioga).
    Tioga,
}

impl MachineKind {
    /// Human-readable system name.
    pub fn name(self) -> &'static str {
        match self {
            MachineKind::Lassen => "lassen",
            MachineKind::Tioga => "tioga",
        }
    }
}

/// What the node's sensors can measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TelemetrySupport {
    /// Direct node-level power measurement (includes uncore). True on
    /// Lassen (OCC), false on Tioga.
    pub node_power: bool,
    /// Per-socket CPU power.
    pub cpu_power: bool,
    /// Memory power. True on Lassen only.
    pub memory_power: bool,
    /// GPU-device power. On Lassen this is per GPU; on Tioga it is per
    /// OAM (two GCDs combined), captured by `gpus_per_reading`.
    pub gpu_power: bool,
    /// How many logical GPUs share one power reading (1 on Lassen,
    /// 2 on Tioga: a reading covers one OAM = 2 GCDs).
    pub gpus_per_reading: usize,
    /// Sensor update granularity in microseconds (informational; OCC is
    /// 500 µs).
    pub granularity_us: u64,
}

/// What the node's firmware allows the host to cap.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CappingSupport {
    /// Direct node-level power capping (OPAL on Lassen). When absent,
    /// Variorum's node capping becomes "best effort" socket distribution.
    pub node_cap: bool,
    /// Per-GPU power capping (NVML on Lassen).
    pub gpu_cap: bool,
    /// Per-socket CPU power capping (RAPL/OCC-style).
    pub socket_cap: bool,
    /// Whether capping is administratively enabled for users at all
    /// (false on the Tioga early-access system).
    pub user_enabled: bool,
    /// Minimum settable node cap (soft; not hardware-guaranteed below
    /// the hard minimum).
    pub min_node_cap: Watts,
    /// Minimum node cap guaranteed by hardware when GPUs are active.
    pub min_node_cap_hard: Watts,
    /// Maximum node cap == nameplate node power.
    pub max_node_cap: Watts,
    /// Per-GPU cap range.
    pub min_gpu_cap: Watts,
    /// Per-GPU maximum power.
    pub max_gpu_cap: Watts,
}

/// Static description of a node type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeArch {
    /// Which machine this is.
    pub machine: MachineKind,
    /// Marketing/model name.
    pub model: &'static str,
    /// Number of CPU sockets.
    pub sockets: usize,
    /// Physical cores per socket.
    pub cores_per_socket: usize,
    /// Number of logical GPU devices (GCDs on Tioga).
    pub gpus: usize,
    /// Idle power per CPU socket.
    pub cpu_idle: Watts,
    /// Peak power per CPU socket.
    pub cpu_peak: Watts,
    /// Idle power per GPU device.
    pub gpu_idle: Watts,
    /// Peak power per GPU device.
    pub gpu_peak: Watts,
    /// Idle memory-subsystem power (whole node).
    pub mem_idle: Watts,
    /// Peak memory-subsystem power (whole node).
    pub mem_peak: Watts,
    /// Constant "other" power: uncore, fans, NIC, board (whole node).
    pub other: Watts,
    /// Telemetry capability.
    pub telemetry: TelemetrySupport,
    /// Capping capability.
    pub capping: CappingSupport,
}

impl NodeArch {
    /// Idle power of the whole node (all components at their floors).
    pub fn idle_node_power(&self) -> Watts {
        self.cpu_idle * self.sockets as f64
            + self.gpu_idle * self.gpus as f64
            + self.mem_idle
            + self.other
    }

    /// Nameplate (maximum) node power.
    pub fn peak_node_power(&self) -> Watts {
        self.cpu_peak * self.sockets as f64
            + self.gpu_peak * self.gpus as f64
            + self.mem_peak
            + self.other
    }
}

/// The Lassen node architecture (IBM Power AC922).
///
/// Calibration notes: the paper assumes 400 W idle node power; nameplate
/// node cap is 3050 W; V100 GPUs run 100–300 W. Component floors are split
/// so the idle sum is exactly 400 W.
pub fn lassen() -> NodeArch {
    NodeArch {
        machine: MachineKind::Lassen,
        model: "IBM Power AC922",
        sockets: 2,
        cores_per_socket: 22,
        gpus: 4,
        cpu_idle: Watts(60.0),
        cpu_peak: Watts(190.0),
        gpu_idle: Watts(50.0),
        gpu_peak: Watts(300.0),
        mem_idle: Watts(40.0),
        mem_peak: Watts(120.0),
        other: Watts(40.0),
        telemetry: TelemetrySupport {
            node_power: true,
            cpu_power: true,
            memory_power: true,
            gpu_power: true,
            gpus_per_reading: 1,
            granularity_us: 500,
        },
        capping: CappingSupport {
            node_cap: true,
            gpu_cap: true,
            socket_cap: true,
            user_enabled: true,
            min_node_cap: Watts(500.0),
            min_node_cap_hard: Watts(1000.0),
            max_node_cap: Watts(3050.0),
            min_gpu_cap: Watts(100.0),
            max_gpu_cap: Watts(300.0),
        },
    }
}

/// The Tioga node architecture (HPE Cray EX235a).
///
/// 8 logical GPUs (GCDs); telemetry is per OAM (2 GCDs per reading, 560 W
/// OAM peak → 280 W per GCD). No node or memory sensors; capping exists in
/// hardware but is not enabled for users on the early-access system.
pub fn tioga() -> NodeArch {
    NodeArch {
        machine: MachineKind::Tioga,
        model: "HPE Cray EX235a",
        sockets: 1,
        cores_per_socket: 64,
        gpus: 8,
        cpu_idle: Watts(90.0),
        cpu_peak: Watts(280.0),
        gpu_idle: Watts(45.0),
        gpu_peak: Watts(280.0), // per GCD; 560 W per OAM
        mem_idle: Watts(35.0),
        mem_peak: Watts(100.0),
        other: Watts(45.0),
        telemetry: TelemetrySupport {
            node_power: false,
            cpu_power: true,
            memory_power: false,
            gpu_power: true,
            gpus_per_reading: 2,
            granularity_us: 1_000,
        },
        capping: CappingSupport {
            node_cap: false,
            gpu_cap: true,
            socket_cap: true, // present in hardware (HSMP), disabled for users
            user_enabled: false,
            min_node_cap: Watts(0.0),
            min_node_cap_hard: Watts(0.0),
            max_node_cap: Watts(0.0),
            min_gpu_cap: Watts(100.0),
            max_gpu_cap: Watts(280.0),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lassen_idle_matches_paper_assumption() {
        // Paper §IV-C: "We assume an idle node power consumption of 400 W".
        assert_eq!(lassen().idle_node_power(), Watts(400.0));
    }

    #[test]
    fn lassen_caps_match_paper() {
        let a = lassen();
        assert_eq!(a.capping.max_node_cap, Watts(3050.0));
        assert_eq!(a.capping.min_node_cap, Watts(500.0));
        assert_eq!(a.capping.min_node_cap_hard, Watts(1000.0));
        assert_eq!(a.capping.min_gpu_cap, Watts(100.0));
        assert_eq!(a.capping.max_gpu_cap, Watts(300.0));
        assert_eq!(a.gpus, 4);
        assert_eq!(a.sockets, 2);
    }

    #[test]
    fn tioga_telemetry_is_partial() {
        let t = tioga().telemetry;
        assert!(!t.node_power);
        assert!(!t.memory_power);
        assert!(t.cpu_power && t.gpu_power);
        assert_eq!(t.gpus_per_reading, 2, "one reading per OAM");
    }

    #[test]
    fn tioga_capping_disabled_for_users() {
        assert!(!tioga().capping.user_enabled);
        assert_eq!(tioga().gpus, 8, "8 GCDs per node");
    }

    #[test]
    fn tioga_oam_peak_is_560w() {
        let t = tioga();
        // Two GCDs per OAM.
        assert_eq!(t.gpu_peak * 2.0, Watts(560.0));
    }

    #[test]
    fn peak_exceeds_idle() {
        for a in [lassen(), tioga()] {
            assert!(a.peak_node_power() > a.idle_node_power());
        }
    }

    #[test]
    fn lassen_peak_below_nameplate_cap() {
        // Component peaks sum below the 3050 W OPAL maximum.
        let a = lassen();
        assert!(a.peak_node_power().get() <= a.capping.max_node_cap.get());
    }

    #[test]
    fn machine_names() {
        assert_eq!(MachineKind::Lassen.name(), "lassen");
        assert_eq!(MachineKind::Tioga.name(), "tioga");
    }
}
