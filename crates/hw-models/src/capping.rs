//! Capping firmware models.
//!
//! * [`OpalState`] — IBM OPAL node-level power capping as observed on
//!   Lassen, including the **conservative derived GPU cap** the paper
//!   measures in Table III. When a node cap is set, OPAL reserves a fixed
//!   budget for CPU/memory/uncore and splits the remainder across the
//!   GPUs, clamped into the NVML range:
//!
//!   ```text
//!   derived_gpu_cap = clamp((node_cap - RESERVE) / n_gpus, 100 W, 300 W)
//!   ```
//!
//!   with `RESERVE = 936 W` at PSR = 100. This reproduces the paper's
//!   measurements exactly: 1200 → 100, 1800 → 216, 1950 → 253.5, 3050 → 300.
//!
//! * [`NvmlState`] — per-GPU capping through NVML, with the intermittent
//!   failure mode reported in §V: at low node caps the set occasionally
//!   does not take, leaving the previous cap in place or resetting the GPU
//!   to its default maximum.

use crate::arch::NodeArch;
use crate::units::Watts;
use fluxpm_sim::Xoshiro256pp;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The CPU/memory/uncore budget OPAL reserves before splitting the node
/// cap across GPUs, at PSR = 100. Calibrated against paper Table III.
pub const OPAL_GPU_RESERVE: Watts = Watts(936.0);

/// Errors from capping operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CapError {
    /// The architecture has no such capping dial.
    Unsupported,
    /// Capping exists but is administratively disabled (Tioga early
    /// access).
    Disabled,
    /// The requested value is outside the settable range.
    OutOfRange,
    /// No such device index.
    NoSuchDevice,
}

impl fmt::Display for CapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CapError::Unsupported => "capping not supported on this architecture",
            CapError::Disabled => "capping disabled for users on this system",
            CapError::OutOfRange => "requested cap outside settable range",
            CapError::NoSuchDevice => "no such device",
        };
        f.write_str(s)
    }
}

impl std::error::Error for CapError {}

/// What actually happened when a cap was requested (§V failure modes).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CapOutcome {
    /// The cap took effect as requested (possibly clamped into range).
    Applied(Watts),
    /// NVML silently kept the previously set cap.
    StalePrevious(Watts),
    /// NVML silently reset to the vendor default maximum.
    ResetToDefault(Watts),
}

impl CapOutcome {
    /// The cap now in force, whatever happened.
    pub fn effective(self) -> Watts {
        match self {
            CapOutcome::Applied(w)
            | CapOutcome::StalePrevious(w)
            | CapOutcome::ResetToDefault(w) => w,
        }
    }

    /// True if the request was honoured.
    pub fn succeeded(self) -> bool {
        matches!(self, CapOutcome::Applied(_))
    }
}

/// IBM OPAL node-capping state for one node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpalState {
    /// The current node power cap, if one has been set.
    node_cap: Option<Watts>,
    /// Power Shifting Ratio, 0–100. 100 (the default in the paper) gives
    /// maximum share to the GPUs.
    psr: u8,
    /// Number of GPUs the derived cap is split across.
    n_gpus: usize,
    /// Settable range.
    min_cap: Watts,
    max_cap: Watts,
    /// NVML clamp range for the derived GPU cap.
    gpu_range: (Watts, Watts),
}

impl OpalState {
    /// Fresh OPAL state for an architecture (uncapped).
    ///
    /// Returns `None` if the architecture has no node-capping firmware
    /// (Tioga).
    pub fn for_arch(arch: &NodeArch) -> Option<OpalState> {
        if !arch.capping.node_cap {
            return None;
        }
        Some(OpalState {
            node_cap: None,
            psr: 100,
            n_gpus: arch.gpus,
            min_cap: arch.capping.min_node_cap,
            max_cap: arch.capping.max_node_cap,
            gpu_range: (arch.capping.min_gpu_cap, arch.capping.max_gpu_cap),
        })
    }

    /// Set the node power cap. Values are clamped into the settable range
    /// (matching OPAL's behaviour of accepting and clamping, rather than
    /// erroring).
    pub fn set_node_cap(&mut self, cap: Watts) -> Watts {
        let clamped = cap.clamp(self.min_cap, self.max_cap);
        self.node_cap = Some(clamped);
        clamped
    }

    /// Remove the node cap (return to nameplate).
    pub fn clear_node_cap(&mut self) {
        self.node_cap = None;
    }

    /// The current node cap, if set.
    pub fn node_cap(&self) -> Option<Watts> {
        self.node_cap
    }

    /// Set the Power Shifting Ratio (0–100).
    pub fn set_psr(&mut self, psr: u8) {
        self.psr = psr.min(100);
    }

    /// Current PSR.
    pub fn psr(&self) -> u8 {
        self.psr
    }

    /// The per-GPU cap OPAL derives from the current node cap.
    ///
    /// `None` when the node is uncapped (GPUs run at their own caps). At
    /// PSR below 100 the reserve grows, shifting power away from the GPUs
    /// (4 W of reserve per PSR point, a documented model choice — the
    /// paper always uses PSR = 100).
    pub fn derived_gpu_cap(&self) -> Option<Watts> {
        let cap = self.node_cap?;
        if self.n_gpus == 0 {
            return None;
        }
        let reserve = OPAL_GPU_RESERVE + Watts(4.0 * (100 - self.psr) as f64);
        let per_gpu = (cap - reserve) / self.n_gpus as f64;
        Some(per_gpu.clamp(self.gpu_range.0, self.gpu_range.1))
    }
}

/// NVML per-GPU capping state for one node.
#[derive(Debug, Clone)]
pub struct NvmlState {
    /// Current per-GPU software caps (None = vendor default / uncapped).
    caps: Vec<Option<Watts>>,
    /// Settable range.
    range: (Watts, Watts),
    /// Vendor default (maximum) power.
    default_cap: Watts,
    /// Probability that a set silently fails (paper §V observed this at
    /// low node caps). Zero by default.
    failure_rate: f64,
    /// Node cap threshold below which the failure rate applies; above it
    /// sets always succeed. The paper saw failures "at a low node-level
    /// power cap (1200 W)".
    failure_below_node_cap: Watts,
    /// Count of failed set operations (for experiment reporting).
    failures: u64,
}

impl NvmlState {
    /// Fresh NVML state (no software caps).
    pub fn for_arch(arch: &NodeArch) -> NvmlState {
        NvmlState {
            caps: vec![None; arch.gpus],
            range: (arch.capping.min_gpu_cap, arch.capping.max_gpu_cap),
            default_cap: arch.capping.max_gpu_cap,
            failure_rate: 0.0,
            failure_below_node_cap: Watts(1200.0),
            failures: 0,
        }
    }

    /// Enable the intermittent-failure model with the given per-set
    /// probability.
    pub fn with_failure_injection(mut self, rate: f64) -> NvmlState {
        self.failure_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Number of GPUs managed.
    pub fn len(&self) -> usize {
        self.caps.len()
    }

    /// True if no GPUs (never the case on our architectures).
    pub fn is_empty(&self) -> bool {
        self.caps.is_empty()
    }

    /// Request a cap on one GPU. `node_cap_context` is the node-level cap
    /// currently in force (failures only trigger below the threshold).
    pub fn set_gpu_cap(
        &mut self,
        gpu: usize,
        cap: Watts,
        node_cap_context: Option<Watts>,
        rng: &mut Xoshiro256pp,
    ) -> Result<CapOutcome, CapError> {
        if gpu >= self.caps.len() {
            return Err(CapError::NoSuchDevice);
        }
        if cap.get() < self.range.0.get() || cap.get() > self.range.1.get() {
            return Err(CapError::OutOfRange);
        }
        let low_cap_regime = node_cap_context
            .map(|nc| nc.get() <= self.failure_below_node_cap.get())
            .unwrap_or(false);
        if low_cap_regime && self.failure_rate > 0.0 && rng.chance(self.failure_rate) {
            self.failures += 1;
            // Two observed failure modes, equally likely: stale previous
            // cap, or reset to the vendor default.
            return Ok(if rng.chance(0.5) {
                let prev = self.caps[gpu].unwrap_or(self.default_cap);
                CapOutcome::StalePrevious(prev)
            } else {
                self.caps[gpu] = None;
                CapOutcome::ResetToDefault(self.default_cap)
            });
        }
        self.caps[gpu] = Some(cap);
        Ok(CapOutcome::Applied(cap))
    }

    /// Clear the software cap on one GPU.
    pub fn clear_gpu_cap(&mut self, gpu: usize) -> Result<(), CapError> {
        if gpu >= self.caps.len() {
            return Err(CapError::NoSuchDevice);
        }
        self.caps[gpu] = None;
        Ok(())
    }

    /// The software cap on one GPU, if set.
    pub fn gpu_cap(&self, gpu: usize) -> Option<Watts> {
        self.caps.get(gpu).copied().flatten()
    }

    /// All software caps.
    pub fn caps(&self) -> &[Option<Watts>] {
        &self.caps
    }

    /// Total failed set operations so far.
    pub fn failure_count(&self) -> u64 {
        self.failures
    }

    /// The settable range.
    pub fn range(&self) -> (Watts, Watts) {
        self.range
    }
}

/// Per-socket CPU capping state (RAPL on x86, OCC socket limits on
/// Power9, HSMP on AMD). The paper's FPP is "device-agnostic from a
/// logistical perspective" — this is the dial its socket-level variant
/// drives.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RaplState {
    caps: Vec<Option<Watts>>,
    range: (Watts, Watts),
}

impl RaplState {
    /// Fresh state (no socket caps) for an architecture.
    pub fn for_arch(arch: &NodeArch) -> RaplState {
        RaplState {
            caps: vec![None; arch.sockets],
            // The settable floor is the idle power (firmware cannot cap
            // below leakage) and the ceiling is the socket TDP.
            range: (arch.cpu_idle, arch.cpu_peak),
        }
    }

    /// Number of sockets managed.
    pub fn len(&self) -> usize {
        self.caps.len()
    }

    /// True if no sockets (never on our architectures).
    pub fn is_empty(&self) -> bool {
        self.caps.is_empty()
    }

    /// Request a cap on one socket (clamped into the settable range, as
    /// RAPL does).
    pub fn set_socket_cap(&mut self, socket: usize, cap: Watts) -> Result<Watts, CapError> {
        if socket >= self.caps.len() {
            return Err(CapError::NoSuchDevice);
        }
        let clamped = cap.clamp(self.range.0, self.range.1);
        self.caps[socket] = Some(clamped);
        Ok(clamped)
    }

    /// Clear the cap on one socket.
    pub fn clear_socket_cap(&mut self, socket: usize) -> Result<(), CapError> {
        if socket >= self.caps.len() {
            return Err(CapError::NoSuchDevice);
        }
        self.caps[socket] = None;
        Ok(())
    }

    /// Current cap on one socket.
    pub fn socket_cap(&self, socket: usize) -> Option<Watts> {
        self.caps.get(socket).copied().flatten()
    }

    /// All socket caps.
    pub fn caps(&self) -> &[Option<Watts>] {
        &self.caps
    }
}

/// Memory-subsystem (DRAM RAPL) capping state. The third device class
/// the paper names for FPP ("socket-level or memory-level power
/// capping", §III-B2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DramCapState {
    cap: Option<Watts>,
    range: (Watts, Watts),
}

impl DramCapState {
    /// Fresh state (uncapped) for an architecture.
    pub fn for_arch(arch: &NodeArch) -> DramCapState {
        DramCapState {
            cap: None,
            range: (arch.mem_idle, arch.mem_peak),
        }
    }

    /// Request a memory cap (clamped into the settable range).
    pub fn set_cap(&mut self, cap: Watts) -> Watts {
        let clamped = cap.clamp(self.range.0, self.range.1);
        self.cap = Some(clamped);
        clamped
    }

    /// Clear the memory cap.
    pub fn clear(&mut self) {
        self.cap = None;
    }

    /// Current memory cap, if set.
    pub fn cap(&self) -> Option<Watts> {
        self.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{lassen, tioga};

    #[test]
    fn dram_set_clamp_clear() {
        let mut d = DramCapState::for_arch(&lassen());
        assert_eq!(d.cap(), None);
        assert_eq!(d.set_cap(Watts(90.0)), Watts(90.0));
        // Clamped into [mem_idle, mem_peak] = [40, 120].
        assert_eq!(d.set_cap(Watts(10.0)), Watts(40.0));
        assert_eq!(d.set_cap(Watts(500.0)), Watts(120.0));
        d.clear();
        assert_eq!(d.cap(), None);
    }

    #[test]
    fn rapl_set_clamp_clear() {
        let mut r = RaplState::for_arch(&lassen());
        assert_eq!(r.len(), 2);
        assert_eq!(r.set_socket_cap(0, Watts(120.0)), Ok(Watts(120.0)));
        assert_eq!(r.socket_cap(0), Some(Watts(120.0)));
        // Clamped into [idle, peak] = [60, 190].
        assert_eq!(r.set_socket_cap(1, Watts(10.0)), Ok(Watts(60.0)));
        assert_eq!(r.set_socket_cap(1, Watts(500.0)), Ok(Watts(190.0)));
        assert_eq!(
            r.set_socket_cap(5, Watts(100.0)),
            Err(CapError::NoSuchDevice)
        );
        r.clear_socket_cap(0).unwrap();
        assert_eq!(r.socket_cap(0), None);
    }

    #[test]
    fn opal_derivation_matches_paper_table3() {
        let mut opal = OpalState::for_arch(&lassen()).unwrap();
        // Table III: node cap -> derived max GPU cap.
        for (node, gpu) in [
            (3050.0, 300.0),
            (1200.0, 100.0),
            (1800.0, 216.0),
            (1950.0, 253.5),
        ] {
            opal.set_node_cap(Watts(node));
            let got = opal.derived_gpu_cap().unwrap();
            assert!(
                got.approx_eq(Watts(gpu), 0.6),
                "node cap {node}: expected ~{gpu}, got {got}"
            );
        }
    }

    #[test]
    fn opal_uncapped_has_no_derived_cap() {
        let opal = OpalState::for_arch(&lassen()).unwrap();
        assert_eq!(opal.node_cap(), None);
        assert_eq!(opal.derived_gpu_cap(), None);
    }

    #[test]
    fn opal_clamps_into_range() {
        let mut opal = OpalState::for_arch(&lassen()).unwrap();
        assert_eq!(
            opal.set_node_cap(Watts(100.0)),
            Watts(500.0),
            "below soft min"
        );
        assert_eq!(opal.set_node_cap(Watts(9999.0)), Watts(3050.0), "above max");
    }

    #[test]
    fn opal_clear_restores_uncapped() {
        let mut opal = OpalState::for_arch(&lassen()).unwrap();
        opal.set_node_cap(Watts(1200.0));
        opal.clear_node_cap();
        assert_eq!(opal.derived_gpu_cap(), None);
    }

    #[test]
    fn opal_psr_shifts_power_away_from_gpus() {
        let mut opal = OpalState::for_arch(&lassen()).unwrap();
        opal.set_node_cap(Watts(1950.0));
        let at_100 = opal.derived_gpu_cap().unwrap();
        opal.set_psr(50);
        let at_50 = opal.derived_gpu_cap().unwrap();
        assert!(
            at_50 < at_100,
            "lower PSR gives GPUs less: {at_50} vs {at_100}"
        );
    }

    #[test]
    fn opal_absent_on_tioga() {
        assert!(OpalState::for_arch(&tioga()).is_none());
    }

    #[test]
    fn opal_derivation_is_monotone_in_node_cap() {
        let mut opal = OpalState::for_arch(&lassen()).unwrap();
        let mut prev = Watts::ZERO;
        for cap in (500..=3050).step_by(50) {
            opal.set_node_cap(Watts(cap as f64));
            let d = opal.derived_gpu_cap().unwrap();
            assert!(d >= prev, "monotone violated at {cap}");
            assert!((100.0..=300.0).contains(&d.get()));
            prev = d;
        }
    }

    #[test]
    fn nvml_set_and_clear() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let mut nvml = NvmlState::for_arch(&lassen());
        let out = nvml.set_gpu_cap(2, Watts(150.0), None, &mut rng).unwrap();
        assert_eq!(out, CapOutcome::Applied(Watts(150.0)));
        assert_eq!(nvml.gpu_cap(2), Some(Watts(150.0)));
        assert_eq!(nvml.gpu_cap(0), None);
        nvml.clear_gpu_cap(2).unwrap();
        assert_eq!(nvml.gpu_cap(2), None);
    }

    #[test]
    fn nvml_range_checks() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let mut nvml = NvmlState::for_arch(&lassen());
        assert_eq!(
            nvml.set_gpu_cap(0, Watts(50.0), None, &mut rng),
            Err(CapError::OutOfRange)
        );
        assert_eq!(
            nvml.set_gpu_cap(0, Watts(301.0), None, &mut rng),
            Err(CapError::OutOfRange)
        );
        assert_eq!(
            nvml.set_gpu_cap(9, Watts(200.0), None, &mut rng),
            Err(CapError::NoSuchDevice)
        );
    }

    #[test]
    fn nvml_failures_only_in_low_cap_regime() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let mut nvml = NvmlState::for_arch(&lassen()).with_failure_injection(1.0);
        // High node cap: always succeeds.
        let out = nvml
            .set_gpu_cap(0, Watts(200.0), Some(Watts(1950.0)), &mut rng)
            .unwrap();
        assert!(out.succeeded());
        // Low node cap with rate 1.0: always fails.
        let out = nvml
            .set_gpu_cap(0, Watts(150.0), Some(Watts(1200.0)), &mut rng)
            .unwrap();
        assert!(!out.succeeded());
        assert_eq!(nvml.failure_count(), 1);
    }

    #[test]
    fn nvml_failure_modes_are_stale_or_default() {
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let mut nvml = NvmlState::for_arch(&lassen()).with_failure_injection(1.0);
        nvml.set_gpu_cap(0, Watts(250.0), None, &mut rng).unwrap(); // succeeds
        let mut saw_stale = false;
        let mut saw_default = false;
        for _ in 0..64 {
            match nvml
                .set_gpu_cap(0, Watts(120.0), Some(Watts(1000.0)), &mut rng)
                .unwrap()
            {
                CapOutcome::StalePrevious(w) => {
                    saw_stale = true;
                    // Stale keeps whatever was in force.
                    assert!(w == Watts(250.0) || w == Watts(300.0));
                }
                CapOutcome::ResetToDefault(w) => {
                    saw_default = true;
                    assert_eq!(w, Watts(300.0));
                }
                CapOutcome::Applied(_) => panic!("rate 1.0 must not apply"),
            }
        }
        assert!(saw_stale && saw_default);
    }

    #[test]
    fn nvml_no_failures_without_injection() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let mut nvml = NvmlState::for_arch(&lassen());
        for _ in 0..100 {
            let out = nvml
                .set_gpu_cap(1, Watts(100.0), Some(Watts(1000.0)), &mut rng)
                .unwrap();
            assert!(out.succeeded());
        }
        assert_eq!(nvml.failure_count(), 0);
    }

    #[test]
    fn cap_outcome_effective() {
        assert_eq!(CapOutcome::Applied(Watts(1.0)).effective(), Watts(1.0));
        assert_eq!(
            CapOutcome::StalePrevious(Watts(2.0)).effective(),
            Watts(2.0)
        );
        assert!(!CapOutcome::ResetToDefault(Watts(3.0)).succeeded());
    }

    #[test]
    fn cap_error_display() {
        assert!(CapError::Disabled.to_string().contains("disabled"));
    }
}
