//! One simulated node: architecture + capping state + sensors + meter.
//!
//! `NodeHardware` is the unit the Variorum layer talks to. It owns the
//! OPAL/NVML capping state, resolves workload demand into actual draw, and
//! integrates energy.

use crate::arch::NodeArch;
use crate::capping::{CapError, CapOutcome, DramCapState, NvmlState, OpalState, RaplState};
use crate::energy::EnergyMeter;
use crate::power::{resolve_with_sockets, PowerDemand, PowerDraw};
use crate::sensors::{SensorReading, Sensors};
use crate::units::Watts;
use fluxpm_sim::Xoshiro256pp;
use serde::{Deserialize, Serialize};

/// Dense node identifier within a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index into cluster vectors.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The full hardware state of one node.
#[derive(Debug)]
pub struct NodeHardware {
    /// This node's id.
    pub id: NodeId,
    /// Static architecture description.
    pub arch: NodeArch,
    /// OPAL node capping (Lassen only).
    pub opal: Option<OpalState>,
    /// NVML/per-GPU capping state.
    pub nvml: NvmlState,
    /// Per-socket CPU capping state (RAPL/OCC/HSMP).
    pub rapl: RaplState,
    /// Memory-subsystem capping state (DRAM RAPL).
    pub dram: DramCapState,
    /// Sensor complex.
    pub sensors: Sensors,
    /// Energy integration.
    pub meter: EnergyMeter,
    /// Current workload demand (idle when no job is running).
    demand: PowerDemand,
    /// RNG for capping failure injection.
    cap_rng: Xoshiro256pp,
    /// Cached draw for the current demand/caps (invalidated on change).
    cached_draw: Option<PowerDraw>,
}

impl NodeHardware {
    /// Build a node of the given architecture. `seed` decorrelates the
    /// node's stochastic models from its siblings.
    pub fn new(id: NodeId, arch: NodeArch, seed: u64) -> NodeHardware {
        let mut root = Xoshiro256pp::seed_from_u64(seed);
        let sensors = Sensors::new(&arch, root.next_u64());
        let cap_rng = root.child(id.0 as u64);
        NodeHardware {
            id,
            opal: OpalState::for_arch(&arch),
            nvml: NvmlState::for_arch(&arch),
            rapl: RaplState::for_arch(&arch),
            dram: DramCapState::for_arch(&arch),
            sensors,
            meter: EnergyMeter::new(),
            demand: PowerDemand::idle(&arch),
            cap_rng,
            cached_draw: None,
            arch,
        }
    }

    /// Enable the NVML intermittent-failure model.
    pub fn with_nvml_failure_injection(mut self, rate: f64) -> NodeHardware {
        self.nvml = NvmlState::for_arch(&self.arch).with_failure_injection(rate);
        self
    }

    /// Replace the current workload demand.
    pub fn set_demand(&mut self, demand: PowerDemand) {
        self.demand = demand;
        self.cached_draw = None;
    }

    /// Reset demand to idle (job ended).
    pub fn set_idle(&mut self) {
        self.demand = PowerDemand::idle(&self.arch);
        self.cached_draw = None;
    }

    /// The current demand.
    pub fn demand(&self) -> &PowerDemand {
        &self.demand
    }

    /// Effective per-GPU caps: the tighter of the NVML software cap and
    /// the OPAL-derived cap (None = uncapped).
    pub fn effective_gpu_caps(&self) -> Vec<Option<Watts>> {
        let derived = self.opal.as_ref().and_then(|o| o.derived_gpu_cap());
        self.nvml
            .caps()
            .iter()
            .map(|nvml_cap| match (nvml_cap, derived) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (Some(a), None) => Some(*a),
                (None, Some(b)) => Some(b),
                (None, None) => None,
            })
            .collect()
    }

    /// The node cap currently enforced by OPAL, if any.
    pub fn node_cap(&self) -> Option<Watts> {
        self.opal.as_ref().and_then(|o| o.node_cap())
    }

    /// Resolve the current demand into actual draw under the current caps.
    pub fn draw(&mut self) -> PowerDraw {
        self.draw_ref().clone()
    }

    /// Like [`NodeHardware::draw`], but returns a reference into the resolution
    /// cache instead of cloning it — the read path for per-tick callers
    /// (the node manager samples every GPU every second; cloning two
    /// `Vec<Watts>` per tick per node is pure waste). The cache-miss
    /// path still resolves; steady-state reads between demand/cap
    /// changes are allocation-free.
    pub fn draw_ref(&mut self) -> &PowerDraw {
        if self.cached_draw.is_none() {
            let caps = self.effective_gpu_caps();
            // The DRAM cap clamps memory demand before resolution (no
            // throttle feedback: none of the modelled apps is
            // memory-bound).
            let mut demand = self.demand.clone();
            if let Some(c) = self.dram.cap() {
                demand.memory = demand.memory.min(c.max(self.arch.mem_idle));
            }
            let d = resolve_with_sockets(
                &self.arch,
                &demand,
                &caps,
                self.rapl.caps(),
                self.node_cap(),
            );
            self.cached_draw = Some(d);
        }
        self.cached_draw.as_ref().expect("cache just filled")
    }

    /// Set the OPAL node cap. Errors on architectures without node
    /// capping or where capping is administratively disabled.
    pub fn set_node_cap(&mut self, cap: Watts) -> Result<Watts, CapError> {
        if !self.arch.capping.user_enabled {
            return Err(CapError::Disabled);
        }
        let opal = self.opal.as_mut().ok_or(CapError::Unsupported)?;
        self.cached_draw = None;
        Ok(opal.set_node_cap(cap))
    }

    /// Clear the OPAL node cap.
    pub fn clear_node_cap(&mut self) -> Result<(), CapError> {
        let opal = self.opal.as_mut().ok_or(CapError::Unsupported)?;
        opal.clear_node_cap();
        self.cached_draw = None;
        Ok(())
    }

    /// Set a per-GPU cap through NVML. Subject to failure injection in
    /// the low-node-cap regime.
    pub fn set_gpu_cap(&mut self, gpu: usize, cap: Watts) -> Result<CapOutcome, CapError> {
        if !self.arch.capping.user_enabled {
            return Err(CapError::Disabled);
        }
        if !self.arch.capping.gpu_cap {
            return Err(CapError::Unsupported);
        }
        let node_ctx = self.node_cap();
        self.cached_draw = None;
        self.nvml.set_gpu_cap(gpu, cap, node_ctx, &mut self.cap_rng)
    }

    /// Set the memory-subsystem cap (DRAM RAPL).
    pub fn set_memory_cap(&mut self, cap: Watts) -> Result<Watts, CapError> {
        if !self.arch.capping.user_enabled {
            return Err(CapError::Disabled);
        }
        self.cached_draw = None;
        Ok(self.dram.set_cap(cap))
    }

    /// Clear the memory-subsystem cap.
    pub fn clear_memory_cap(&mut self) {
        self.cached_draw = None;
        self.dram.clear();
    }

    /// Set a per-socket CPU cap (RAPL-style). Subject to the same
    /// administrative gating as the other dials.
    pub fn set_socket_cap(&mut self, socket: usize, cap: Watts) -> Result<Watts, CapError> {
        if !self.arch.capping.user_enabled {
            return Err(CapError::Disabled);
        }
        if !self.arch.capping.socket_cap {
            return Err(CapError::Unsupported);
        }
        self.cached_draw = None;
        self.rapl.set_socket_cap(socket, cap)
    }

    /// Clear a per-socket CPU cap.
    pub fn clear_socket_cap(&mut self, socket: usize) -> Result<(), CapError> {
        self.cached_draw = None;
        self.rapl.clear_socket_cap(socket)
    }

    /// Integrate energy assuming the current draw held for `dt_seconds`.
    pub fn tick(&mut self, dt_seconds: f64) -> PowerDraw {
        let draw = self.draw();
        self.meter.accumulate(&draw, dt_seconds);
        draw
    }

    /// Full sensor scan of the current draw.
    pub fn read_sensors(&mut self) -> SensorReading {
        let draw = self.draw();
        self.sensors.read(&self.arch, &draw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{lassen, tioga};

    fn busy_demand(arch: &NodeArch) -> PowerDemand {
        PowerDemand {
            cpu: vec![Watts(150.0); arch.sockets],
            memory: Watts(80.0),
            gpu: vec![Watts(260.0); arch.gpus],
            other: arch.other,
        }
    }

    #[test]
    fn idle_node_draws_idle_power() {
        let mut n = NodeHardware::new(NodeId(0), lassen(), 1);
        assert_eq!(n.draw().total(), Watts(400.0));
    }

    #[test]
    fn demand_changes_draw() {
        let mut n = NodeHardware::new(NodeId(0), lassen(), 1);
        let arch = n.arch.clone();
        n.set_demand(busy_demand(&arch));
        assert!(n.draw().total() > Watts(1000.0));
        n.set_idle();
        assert_eq!(n.draw().total(), Watts(400.0));
    }

    #[test]
    fn effective_caps_take_the_tighter_of_nvml_and_opal() {
        let mut n = NodeHardware::new(NodeId(0), lassen(), 1);
        // OPAL 1950 derives ~253.5 W.
        n.set_node_cap(Watts(1950.0)).unwrap();
        assert!(n.effective_gpu_caps()[0]
            .unwrap()
            .approx_eq(Watts(253.5), 0.1));
        // NVML 150 is tighter.
        n.set_gpu_cap(0, Watts(150.0)).unwrap();
        assert_eq!(n.effective_gpu_caps()[0], Some(Watts(150.0)));
        // NVML 280 is looser than OPAL's derived cap.
        n.set_gpu_cap(1, Watts(280.0)).unwrap();
        assert!(n.effective_gpu_caps()[1]
            .unwrap()
            .approx_eq(Watts(253.5), 0.1));
    }

    #[test]
    fn ibm_default_1200_caps_gpus_at_100() {
        // Paper Table III: IBM default at 1200 W node cap.
        let mut n = NodeHardware::new(NodeId(0), lassen(), 1);
        let arch = n.arch.clone();
        n.set_node_cap(Watts(1200.0)).unwrap();
        n.set_demand(busy_demand(&arch));
        let draw = n.draw();
        for g in &draw.gpu {
            assert_eq!(*g, Watts(100.0));
        }
        // 2×150 + 4×100 + 80 + 40 = 820 W — well under the 1200 W cap,
        // the under-utilization the paper reports.
        assert!(draw.total().approx_eq(Watts(820.0), 0.1));
    }

    #[test]
    fn tioga_rejects_all_capping() {
        let mut n = NodeHardware::new(NodeId(0), tioga(), 1);
        assert_eq!(n.set_node_cap(Watts(1000.0)), Err(CapError::Disabled));
        assert_eq!(
            n.set_gpu_cap(0, Watts(200.0)).unwrap_err(),
            CapError::Disabled
        );
    }

    #[test]
    fn tick_accumulates_energy() {
        let mut n = NodeHardware::new(NodeId(0), lassen(), 1);
        let arch = n.arch.clone();
        n.set_demand(busy_demand(&arch));
        let d1 = n.tick(2.0);
        n.tick(2.0);
        assert!((n.meter.total.get() - d1.total().get() * 4.0).abs() < 1e-6);
        assert_eq!(n.meter.peak, d1.total());
    }

    #[test]
    fn sensor_read_reflects_caps() {
        let mut n = NodeHardware::new(NodeId(0), lassen(), 1);
        n.sensors = Sensors::new(&n.arch, 0).with_noise(0.0);
        let arch = n.arch.clone();
        n.set_demand(busy_demand(&arch));
        let before = n.read_sensors().node.unwrap();
        n.set_node_cap(Watts(1200.0)).unwrap();
        let after = n.read_sensors().node.unwrap();
        assert!(after < before);
    }

    #[test]
    fn cache_invalidation_on_cap_change() {
        let mut n = NodeHardware::new(NodeId(0), lassen(), 1);
        let arch = n.arch.clone();
        n.set_demand(busy_demand(&arch));
        let a = n.draw().total();
        n.set_gpu_cap(0, Watts(100.0)).unwrap();
        let b = n.draw().total();
        assert!(b < a, "cap change must invalidate the cached draw");
        n.clear_node_cap().unwrap();
        let _ = n.draw();
    }

    #[test]
    fn memory_cap_clamps_memory_draw() {
        let mut n = NodeHardware::new(NodeId(0), lassen(), 1);
        let arch = n.arch.clone();
        n.set_demand(busy_demand(&arch));
        assert_eq!(n.draw().memory, Watts(80.0));
        let set = n.set_memory_cap(Watts(60.0)).unwrap();
        assert_eq!(set, Watts(60.0));
        assert_eq!(n.draw().memory, Watts(60.0));
        n.clear_memory_cap();
        assert_eq!(n.draw().memory, Watts(80.0));
        // Tioga refuses, as with every other dial.
        let mut t = NodeHardware::new(NodeId(1), tioga(), 1);
        assert_eq!(t.set_memory_cap(Watts(50.0)), Err(CapError::Disabled));
    }

    #[test]
    fn node_id_index() {
        assert_eq!(NodeId(7).index(), 7);
    }
}
