//! In-band power sensors.
//!
//! Lassen's OCC exposes node, per-socket CPU, memory, and per-GPU power;
//! Tioga exposes per-socket CPU and per-OAM (2-GCD) power only — no node
//! or memory telemetry, which is why the paper's Tioga "node power" is a
//! conservative sum of CPU + 4 OAMs.
//!
//! Reads have two costs modelled here:
//!
//! * **noise** — sensors report the true draw perturbed by a small
//!   relative Gaussian error,
//! * **CPU time** — an in-band read steals host CPU cycles from the
//!   application. This is the physical source of `flux-power-monitor`'s
//!   overhead (paper Fig. 3): OCC reads on Lassen are far more expensive
//!   than MSR reads on Tioga.

use crate::arch::NodeArch;
use crate::power::PowerDraw;
use crate::units::Watts;
use fluxpm_sim::{SimDuration, Xoshiro256pp};
use serde::{Deserialize, Serialize};

/// Cost of a full node power read (all components), charged to the host
/// CPU and therefore to any application sharing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SensorReadCost {
    /// Host CPU time consumed by one full read.
    pub cpu_time: SimDuration,
}

impl SensorReadCost {
    /// Per-architecture read cost, calibrated so a 2-second sampling loop
    /// produces the overheads measured in the paper (≈0.3 % steady-state
    /// on Lassen, ≈0.04 % on Tioga).
    pub fn for_arch(arch: &NodeArch) -> SensorReadCost {
        use crate::arch::MachineKind::*;
        let cpu_time = match arch.machine {
            // OCC access goes through the service processor path: ~6 ms.
            Lassen => SimDuration::from_micros(6_000),
            // MSR/E-SMI reads are sub-millisecond.
            Tioga => SimDuration::from_micros(800),
        };
        SensorReadCost { cpu_time }
    }
}

/// One full sensor scan of a node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensorReading {
    /// Directly measured node power, if the hardware reports it
    /// (Lassen: yes, includes uncore; Tioga: no).
    pub node: Option<Watts>,
    /// Per-socket CPU power.
    pub cpu: Vec<Watts>,
    /// Memory power, if measurable.
    pub memory: Option<Watts>,
    /// GPU power readings. One entry per *reading group*: per GPU on
    /// Lassen, per OAM (sum of 2 GCDs) on Tioga.
    pub gpu: Vec<Watts>,
}

impl SensorReading {
    /// The node power as a client would compute it: the direct measurement
    /// when available, otherwise the conservative sum of what is visible
    /// (CPU + GPU readings — the Tioga case from the paper).
    pub fn node_power_estimate(&self) -> Watts {
        match self.node {
            Some(w) => w,
            None => {
                self.cpu.iter().copied().sum::<Watts>() + self.gpu.iter().copied().sum::<Watts>()
            }
        }
    }

    /// Sum of GPU readings.
    pub fn gpu_total(&self) -> Watts {
        self.gpu.iter().copied().sum()
    }

    /// Sum of CPU readings.
    pub fn cpu_total(&self) -> Watts {
        self.cpu.iter().copied().sum()
    }
}

/// The sensor complex of one node.
#[derive(Debug, Clone)]
pub struct Sensors {
    /// Relative 1-sigma read noise (e.g. 0.005 = 0.5 %).
    noise_rel: f64,
    /// Per-read host CPU cost.
    cost: SensorReadCost,
    /// Dedicated noise stream (decoupled from every other stochastic
    /// model so enabling/disabling sensors never perturbs them).
    rng: Xoshiro256pp,
}

impl Sensors {
    /// Build the sensor complex for an architecture. `seed` decorrelates
    /// nodes from each other.
    pub fn new(arch: &NodeArch, seed: u64) -> Sensors {
        Sensors {
            noise_rel: 0.005,
            cost: SensorReadCost::for_arch(arch),
            rng: Xoshiro256pp::seed_from_u64(seed ^ 0x5E45_0125_u64.wrapping_mul(31)),
        }
    }

    /// Override the relative read noise (tests use 0 for exactness).
    pub fn with_noise(mut self, rel: f64) -> Sensors {
        self.noise_rel = rel.max(0.0);
        self
    }

    /// The host-CPU cost of one full read.
    pub fn read_cost(&self) -> SensorReadCost {
        self.cost
    }

    /// Perform a full sensor scan against the true draw.
    pub fn read(&mut self, arch: &NodeArch, draw: &PowerDraw) -> SensorReading {
        let t = &arch.telemetry;
        let node = if t.node_power {
            Some(self.perturb(draw.total()))
        } else {
            None
        };
        let cpu = if t.cpu_power {
            draw.cpu.iter().map(|w| self.perturb(*w)).collect()
        } else {
            Vec::new()
        };
        let memory = if t.memory_power {
            Some(self.perturb(draw.memory))
        } else {
            None
        };
        let gpu = if t.gpu_power {
            // Group GCDs into reading units (1 on Lassen, 2 on Tioga).
            let group = t.gpus_per_reading.max(1);
            draw.gpu
                .chunks(group)
                .map(|chunk| self.perturb(chunk.iter().copied().sum()))
                .collect()
        } else {
            Vec::new()
        };
        SensorReading {
            node,
            cpu,
            memory,
            gpu,
        }
    }

    fn perturb(&mut self, w: Watts) -> Watts {
        if self.noise_rel == 0.0 {
            return w;
        }
        let factor = 1.0 + self.noise_rel * self.rng.gaussian();
        Watts((w.get() * factor).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{lassen, tioga};
    use crate::power::{resolve, PowerDemand};

    fn draw_for(arch: &NodeArch) -> PowerDraw {
        let d = PowerDemand {
            cpu: vec![Watts(150.0); arch.sockets],
            memory: Watts(80.0),
            gpu: vec![Watts(200.0); arch.gpus],
            other: arch.other,
        };
        let caps = vec![None; arch.gpus];
        resolve(arch, &d, &caps, None)
    }

    #[test]
    fn lassen_reads_everything() {
        let arch = lassen();
        let mut s = Sensors::new(&arch, 1).with_noise(0.0);
        let r = s.read(&arch, &draw_for(&arch));
        assert!(r.node.is_some());
        assert!(r.memory.is_some());
        assert_eq!(r.cpu.len(), 2);
        assert_eq!(r.gpu.len(), 4);
        assert_eq!(r.node.unwrap(), draw_for(&arch).total());
    }

    #[test]
    fn tioga_reads_cpu_and_oam_only() {
        let arch = tioga();
        let mut s = Sensors::new(&arch, 1).with_noise(0.0);
        let r = s.read(&arch, &draw_for(&arch));
        assert!(r.node.is_none(), "no node sensor");
        assert!(r.memory.is_none(), "no memory sensor");
        assert_eq!(r.cpu.len(), 1);
        assert_eq!(r.gpu.len(), 4, "8 GCDs grouped into 4 OAM readings");
        // Each OAM reading covers two 200 W GCDs.
        assert_eq!(r.gpu[0], Watts(400.0));
    }

    #[test]
    fn tioga_node_estimate_is_conservative() {
        let arch = tioga();
        let mut s = Sensors::new(&arch, 1).with_noise(0.0);
        let draw = draw_for(&arch);
        let r = s.read(&arch, &draw);
        let est = r.node_power_estimate();
        assert!(
            est < draw.total(),
            "estimate {est} must undercount true {} (misses mem+other)",
            draw.total()
        );
        assert_eq!(est, r.cpu_total() + r.gpu_total());
    }

    #[test]
    fn lassen_node_estimate_is_direct() {
        let arch = lassen();
        let mut s = Sensors::new(&arch, 1).with_noise(0.0);
        let draw = draw_for(&arch);
        let r = s.read(&arch, &draw);
        assert_eq!(r.node_power_estimate(), draw.total());
    }

    #[test]
    fn noise_is_small_and_unbiased() {
        let arch = lassen();
        let mut s = Sensors::new(&arch, 7).with_noise(0.005);
        let draw = draw_for(&arch);
        let truth = draw.total().get();
        let n = 2000;
        let mean: f64 = (0..n)
            .map(|_| s.read(&arch, &draw).node.unwrap().get())
            .sum::<f64>()
            / n as f64;
        assert!(
            (mean - truth).abs() / truth < 0.002,
            "bias: {mean} vs {truth}"
        );
    }

    #[test]
    fn read_cost_ordering_matches_paper() {
        let l = SensorReadCost::for_arch(&lassen());
        let t = SensorReadCost::for_arch(&tioga());
        assert!(
            l.cpu_time > t.cpu_time,
            "OCC reads cost more than MSR reads"
        );
        // 6 ms per 2 s sample = 0.3 % steady-state overhead on Lassen.
        assert_eq!(l.cpu_time.as_micros(), 6_000);
        assert_eq!(t.cpu_time.as_micros(), 800);
    }

    #[test]
    fn readings_are_deterministic_per_seed() {
        let arch = lassen();
        let draw = draw_for(&arch);
        let mut a = Sensors::new(&arch, 9);
        let mut b = Sensors::new(&arch, 9);
        for _ in 0..10 {
            assert_eq!(a.read(&arch, &draw), b.read(&arch, &draw));
        }
    }
}
