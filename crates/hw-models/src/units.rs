//! Physical units as thin newtypes.
//!
//! Watts and joules flow through every layer of the stack; newtypes keep
//! "is this a power or an energy?" mistakes out of the policy code without
//! runtime cost.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Instantaneous power, watts.
///
/// ```
/// use fluxpm_hw::{Joules, Watts};
///
/// let draw = Watts(1200.0);
/// let energy: Joules = draw.over_seconds(60.0);
/// assert_eq!(energy.kilojoules(), 72.0);
/// assert_eq!(energy.average_over(60.0), draw);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Watts(pub f64);

/// Energy, joules.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Joules(pub f64);

impl Watts {
    /// Zero power.
    pub const ZERO: Watts = Watts(0.0);

    /// Raw value.
    pub const fn get(self) -> f64 {
        self.0
    }

    /// Kilowatts.
    pub fn kilowatts(self) -> f64 {
        self.0 / 1e3
    }

    /// Component-wise minimum.
    pub fn min(self, other: Watts) -> Watts {
        Watts(self.0.min(other.0))
    }

    /// Component-wise maximum.
    pub fn max(self, other: Watts) -> Watts {
        Watts(self.0.max(other.0))
    }

    /// Clamp into `[lo, hi]`.
    pub fn clamp(self, lo: Watts, hi: Watts) -> Watts {
        Watts(self.0.clamp(lo.0, hi.0))
    }

    /// Energy accrued by drawing this power for `seconds`.
    pub fn over_seconds(self, seconds: f64) -> Joules {
        Joules(self.0 * seconds)
    }

    /// True if within `tol` watts of `other`.
    pub fn approx_eq(self, other: Watts, tol: f64) -> bool {
        (self.0 - other.0).abs() <= tol
    }
}

impl Joules {
    /// Zero energy.
    pub const ZERO: Joules = Joules(0.0);

    /// Raw value.
    pub const fn get(self) -> f64 {
        self.0
    }

    /// Kilojoules.
    pub fn kilojoules(self) -> f64 {
        self.0 / 1e3
    }

    /// Average power over `seconds` (zero for non-positive spans).
    pub fn average_over(self, seconds: f64) -> Watts {
        if seconds <= 0.0 {
            Watts::ZERO
        } else {
            Watts(self.0 / seconds)
        }
    }
}

impl Add for Watts {
    type Output = Watts;
    fn add(self, rhs: Watts) -> Watts {
        Watts(self.0 + rhs.0)
    }
}

impl AddAssign for Watts {
    fn add_assign(&mut self, rhs: Watts) {
        self.0 += rhs.0;
    }
}

impl Sub for Watts {
    type Output = Watts;
    fn sub(self, rhs: Watts) -> Watts {
        Watts(self.0 - rhs.0)
    }
}

impl SubAssign for Watts {
    fn sub_assign(&mut self, rhs: Watts) {
        self.0 -= rhs.0;
    }
}

impl Mul<f64> for Watts {
    type Output = Watts;
    fn mul(self, rhs: f64) -> Watts {
        Watts(self.0 * rhs)
    }
}

impl Div<f64> for Watts {
    type Output = Watts;
    fn div(self, rhs: f64) -> Watts {
        Watts(self.0 / rhs)
    }
}

impl Div<Watts> for Watts {
    /// Ratio of two powers (dimensionless).
    type Output = f64;
    fn div(self, rhs: Watts) -> f64 {
        self.0 / rhs.0
    }
}

impl Neg for Watts {
    type Output = Watts;
    fn neg(self) -> Watts {
        Watts(-self.0)
    }
}

impl Sum for Watts {
    fn sum<I: Iterator<Item = Watts>>(iter: I) -> Watts {
        Watts(iter.map(|w| w.0).sum())
    }
}

impl Add for Joules {
    type Output = Joules;
    fn add(self, rhs: Joules) -> Joules {
        Joules(self.0 + rhs.0)
    }
}

impl AddAssign for Joules {
    fn add_assign(&mut self, rhs: Joules) {
        self.0 += rhs.0;
    }
}

impl Sub for Joules {
    type Output = Joules;
    fn sub(self, rhs: Joules) -> Joules {
        Joules(self.0 - rhs.0)
    }
}

impl Sum for Joules {
    fn sum<I: Iterator<Item = Joules>>(iter: I) -> Joules {
        Joules(iter.map(|j| j.0).sum())
    }
}

impl fmt::Display for Watts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} W", self.0)
    }
}

impl fmt::Display for Joules {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} J", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        assert_eq!(Watts(100.0) + Watts(50.0), Watts(150.0));
        assert_eq!(Watts(100.0) - Watts(50.0), Watts(50.0));
        assert_eq!(Watts(100.0) * 2.0, Watts(200.0));
        assert_eq!(Watts(100.0) / 4.0, Watts(25.0));
        assert_eq!(Watts(100.0) / Watts(50.0), 2.0);
    }

    #[test]
    fn power_to_energy() {
        assert_eq!(Watts(500.0).over_seconds(10.0), Joules(5000.0));
        assert_eq!(Joules(5000.0).average_over(10.0), Watts(500.0));
        assert_eq!(Joules(5000.0).average_over(0.0), Watts::ZERO);
    }

    #[test]
    fn clamp_and_minmax() {
        assert_eq!(Watts(350.0).clamp(Watts(100.0), Watts(300.0)), Watts(300.0));
        assert_eq!(Watts(50.0).clamp(Watts(100.0), Watts(300.0)), Watts(100.0));
        assert_eq!(Watts(10.0).min(Watts(20.0)), Watts(10.0));
        assert_eq!(Watts(10.0).max(Watts(20.0)), Watts(20.0));
    }

    #[test]
    fn sums() {
        let total: Watts = [Watts(1.0), Watts(2.0), Watts(3.0)].into_iter().sum();
        assert_eq!(total, Watts(6.0));
        let e: Joules = [Joules(1.0), Joules(2.0)].into_iter().sum();
        assert_eq!(e, Joules(3.0));
    }

    #[test]
    fn conversions_and_display() {
        assert_eq!(Watts(1500.0).kilowatts(), 1.5);
        assert_eq!(Joules(2500.0).kilojoules(), 2.5);
        assert_eq!(Watts(123.456).to_string(), "123.5 W");
    }

    #[test]
    fn approx_eq() {
        assert!(Watts(100.0).approx_eq(Watts(100.4), 0.5));
        assert!(!Watts(100.0).approx_eq(Watts(101.0), 0.5));
    }
}
