//! # fluxpm-hw — simulated node hardware for Lassen and Tioga
//!
//! The paper evaluates on two real machines; this crate is the substitute
//! substrate (see DESIGN.md §1). It models, per node:
//!
//! * **Component power**: CPU sockets, memory, GPUs/OAMs, and "other"
//!   (uncore, fans, NIC) with idle floors and demand-driven draw,
//! * **Sensors**: IBM OCC in-band sensors on Lassen (node / per-socket CPU
//!   / memory / per-GPU, 500 µs granularity) vs MSR-based E-SMI + ROCm on
//!   Tioga (CPU and per-OAM only — *no node or memory telemetry*, which is
//!   why the paper's Tioga node power is a conservative sum),
//! * **Capping firmware**: IBM OPAL node-level capping with the
//!   conservative derived GPU cap the paper measures in Table III, NVML
//!   per-GPU capping with the intermittent failures reported in §V, and
//!   the capping-disabled state of the Tioga early-access system.
//!
//! The resolution pipeline is: a workload presents a [`PowerDemand`]; the
//! node's capping state turns that into an actual [`PowerDraw`] plus
//! per-component throttle factors that the workload model uses to slow
//! application progress.

#![warn(missing_docs)]
pub mod arch;
pub mod capping;
pub mod energy;
pub mod node;
pub mod power;
pub mod sensors;
pub mod units;

pub use arch::{lassen, tioga, CappingSupport, MachineKind, NodeArch, TelemetrySupport};
pub use capping::{CapError, CapOutcome, DramCapState, NvmlState, OpalState, RaplState};
pub use energy::EnergyMeter;
pub use node::{NodeHardware, NodeId};
pub use power::{resolve_with_sockets, PowerDemand, PowerDraw, Throttle};
pub use sensors::{SensorReadCost, SensorReading, Sensors};
pub use units::{Joules, Watts};
