//! Power demand → draw resolution.
//!
//! A workload expresses what each component *wants* to draw
//! ([`PowerDemand`]); the capping state determines what it *actually*
//! draws ([`PowerDraw`]) and how much each component was throttled
//! ([`Throttle`]). Throttle factors are the coupling point between power
//! management and application performance: the workload model slows its
//! progress according to its bottleneck component's throttle.
//!
//! Resolution order mirrors the AC922 with PSR = 100 (maximum share to the
//! GPUs): GPUs are clamped to their effective caps first; then, if a node
//! cap is still violated, the CPU sockets are throttled down to fit (never
//! below idle — firmware cannot stop the silicon from leaking).

use crate::arch::NodeArch;
use crate::units::Watts;
use serde::{Deserialize, Serialize};

/// Requested (uncapped) power per component, for one node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerDemand {
    /// Per-socket CPU demand.
    pub cpu: Vec<Watts>,
    /// Whole-node memory-subsystem demand.
    pub memory: Watts,
    /// Per-GPU demand.
    pub gpu: Vec<Watts>,
    /// Constant board/uncore power.
    pub other: Watts,
}

impl PowerDemand {
    /// The all-idle demand for an architecture.
    pub fn idle(arch: &NodeArch) -> PowerDemand {
        PowerDemand {
            cpu: vec![arch.cpu_idle; arch.sockets],
            memory: arch.mem_idle,
            gpu: vec![arch.gpu_idle; arch.gpus],
            other: arch.other,
        }
    }

    /// Total demanded power.
    pub fn total(&self) -> Watts {
        self.cpu.iter().copied().sum::<Watts>()
            + self.gpu.iter().copied().sum::<Watts>()
            + self.memory
            + self.other
    }

    /// Clamp every component into the architecture's physical envelope
    /// (idle floor, peak ceiling). Demands outside the envelope are a
    /// workload-model bug in debug builds, silently clamped in release.
    pub fn clamp_to_envelope(mut self, arch: &NodeArch) -> PowerDemand {
        for c in &mut self.cpu {
            *c = c.clamp(arch.cpu_idle, arch.cpu_peak);
        }
        for g in &mut self.gpu {
            *g = g.clamp(arch.gpu_idle, arch.gpu_peak);
        }
        self.memory = self.memory.clamp(arch.mem_idle, arch.mem_peak);
        self.other = arch.other;
        self
    }
}

/// Per-component throttle factors in `(0, 1]`: the ratio of granted to
/// demanded *dynamic* power (above idle). 1.0 means unthrottled.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Throttle {
    /// CPU throttle (uniform across sockets).
    pub cpu: f64,
    /// Worst-case GPU throttle across the node's GPUs.
    pub gpu_min: f64,
    /// Per-GPU throttle factors are in `PowerDraw::gpu_throttle`.
    pub mean_gpu: f64,
}

impl Throttle {
    /// No throttling anywhere.
    pub const NONE: Throttle = Throttle {
        cpu: 1.0,
        gpu_min: 1.0,
        mean_gpu: 1.0,
    };
}

/// Actual power drawn per component after capping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerDraw {
    /// Per-socket CPU draw.
    pub cpu: Vec<Watts>,
    /// Memory draw.
    pub memory: Watts,
    /// Per-GPU draw.
    pub gpu: Vec<Watts>,
    /// Board/uncore draw.
    pub other: Watts,
    /// Per-GPU throttle factor (granted/demanded dynamic power).
    pub gpu_throttle: Vec<f64>,
    /// Summary throttle factors.
    pub throttle: Throttle,
}

impl PowerDraw {
    /// Total node draw.
    pub fn total(&self) -> Watts {
        self.cpu.iter().copied().sum::<Watts>()
            + self.gpu.iter().copied().sum::<Watts>()
            + self.memory
            + self.other
    }
}

/// Resolve a demand against effective caps (without socket caps).
///
/// See [`resolve_with_sockets`]; this keeps the common no-socket-cap call
/// sites terse.
pub fn resolve(
    arch: &NodeArch,
    demand: &PowerDemand,
    gpu_caps: &[Option<Watts>],
    node_cap: Option<Watts>,
) -> PowerDraw {
    resolve_with_sockets(arch, demand, gpu_caps, &vec![None; arch.sockets], node_cap)
}

/// Resolve a demand against effective caps.
///
/// * `gpu_caps` — the effective per-GPU cap (min of NVML cap and the
///   OPAL-derived GPU cap), one per GPU; `None` means uncapped.
/// * `socket_caps` — per-socket CPU power caps (RAPL-style), one per
///   socket; `None` means uncapped.
/// * `node_cap` — the OPAL node cap, if set and supported.
///
/// Throttle factors are computed on *dynamic* power (above the idle
/// floor): a GPU idling at 50 W under a 100 W cap is not "throttled".
pub fn resolve_with_sockets(
    arch: &NodeArch,
    demand: &PowerDemand,
    gpu_caps: &[Option<Watts>],
    socket_caps: &[Option<Watts>],
    node_cap: Option<Watts>,
) -> PowerDraw {
    debug_assert_eq!(demand.cpu.len(), arch.sockets);
    debug_assert_eq!(demand.gpu.len(), arch.gpus);
    debug_assert_eq!(gpu_caps.len(), arch.gpus);
    debug_assert_eq!(socket_caps.len(), arch.sockets);
    let demand = demand.clone().clamp_to_envelope(arch);

    // Pass 1: clamp each GPU to its effective cap.
    let mut gpu_draw = Vec::with_capacity(arch.gpus);
    let mut gpu_throttle = Vec::with_capacity(arch.gpus);
    for (d, cap) in demand.gpu.iter().zip(gpu_caps.iter()) {
        let granted = match cap {
            Some(c) => d.min(c.max(arch.gpu_idle)),
            None => *d,
        };
        gpu_draw.push(granted);
        gpu_throttle.push(dynamic_ratio(granted, *d, arch.gpu_idle));
    }

    // Memory and other are not cappable; they draw what they demand.
    let memory = demand.memory;
    let other = demand.other;

    // Pass 2: clamp each socket to its RAPL-style cap.
    let mut cpu_draw: Vec<Watts> = demand
        .cpu
        .iter()
        .zip(socket_caps.iter())
        .map(|(d, cap)| match cap {
            Some(c) => d.min(c.max(arch.cpu_idle)),
            None => *d,
        })
        .collect();

    // Pass 3: if a node cap applies, fit the CPU into what remains.
    if let Some(cap) = node_cap {
        let gpu_total: Watts = gpu_draw.iter().copied().sum();
        let fixed = gpu_total + memory + other;
        let cpu_budget = (cap - fixed).max(arch.cpu_idle * arch.sockets as f64);
        // Scale from the (possibly socket-capped) draw, not raw demand.
        let cpu_demand_total: Watts = cpu_draw.iter().copied().sum();
        if cpu_demand_total > cpu_budget {
            // Uniform scaling of the dynamic share.
            let idle_total = arch.cpu_idle * arch.sockets as f64;
            let dyn_budget = (cpu_budget - idle_total).max(Watts::ZERO);
            let dyn_demand = cpu_demand_total - idle_total;
            let scale = if dyn_demand.get() > 0.0 {
                (dyn_budget / dyn_demand).clamp(0.0, 1.0)
            } else {
                1.0
            };
            for c in &mut cpu_draw {
                let dynamic = (*c - arch.cpu_idle).max(Watts::ZERO);
                *c = arch.cpu_idle + dynamic * scale;
            }
        }
    }

    let cpu_throttle = {
        let granted: Watts = cpu_draw.iter().copied().sum();
        let wanted: Watts = demand.cpu.iter().copied().sum();
        dynamic_ratio_total(granted, wanted, arch.cpu_idle * arch.sockets as f64)
    };

    let gpu_min = gpu_throttle.iter().copied().fold(1.0f64, f64::min);
    let mean_gpu = if gpu_throttle.is_empty() {
        1.0
    } else {
        gpu_throttle.iter().sum::<f64>() / gpu_throttle.len() as f64
    };

    PowerDraw {
        cpu: cpu_draw,
        memory,
        gpu: gpu_draw,
        other,
        gpu_throttle,
        throttle: Throttle {
            cpu: cpu_throttle,
            gpu_min,
            mean_gpu,
        },
    }
}

/// Ratio of granted to demanded dynamic power for one device.
fn dynamic_ratio(granted: Watts, demanded: Watts, idle: Watts) -> f64 {
    let dyn_demand = (demanded - idle).get();
    if dyn_demand <= 1e-9 {
        return 1.0;
    }
    ((granted - idle).get() / dyn_demand).clamp(0.0, 1.0)
}

/// Ratio of granted to demanded dynamic power for a component group.
fn dynamic_ratio_total(granted: Watts, demanded: Watts, idle_total: Watts) -> f64 {
    let dyn_demand = (demanded - idle_total).get();
    if dyn_demand <= 1e-9 {
        return 1.0;
    }
    ((granted - idle_total).get() / dyn_demand).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::lassen;

    fn demand(cpu: f64, gpu: f64) -> PowerDemand {
        let a = lassen();
        PowerDemand {
            cpu: vec![Watts(cpu); a.sockets],
            memory: Watts(80.0),
            gpu: vec![Watts(gpu); a.gpus],
            other: a.other,
        }
    }

    #[test]
    fn uncapped_draw_equals_demand() {
        let a = lassen();
        let d = demand(150.0, 260.0);
        let draw = resolve(&a, &d, &[None; 4], None);
        assert_eq!(draw.total(), d.total());
        assert_eq!(draw.throttle, Throttle::NONE);
    }

    #[test]
    fn gpu_cap_clamps_gpu_only() {
        let a = lassen();
        let d = demand(150.0, 260.0);
        let caps = [Some(Watts(100.0)); 4];
        let draw = resolve(&a, &d, &caps, None);
        for g in &draw.gpu {
            assert_eq!(*g, Watts(100.0));
        }
        assert_eq!(draw.cpu[0], Watts(150.0), "CPU untouched");
        // Dynamic throttle: (100-50)/(260-50) ≈ 0.238.
        assert!((draw.throttle.gpu_min - 50.0 / 210.0).abs() < 1e-9);
    }

    #[test]
    fn gpu_cap_above_demand_is_noop() {
        let a = lassen();
        let d = demand(150.0, 120.0);
        let draw = resolve(&a, &d, &[Some(Watts(300.0)); 4], None);
        assert_eq!(draw.gpu[0], Watts(120.0));
        assert_eq!(draw.throttle.gpu_min, 1.0);
    }

    #[test]
    fn node_cap_throttles_cpu_after_gpus() {
        let a = lassen();
        let d = demand(190.0, 260.0); // total = 380 + 1040 + 80 + 40 = 1540
                                      // Cap at 1200 with GPUs already clamped to 100 (draw 400): fixed =
                                      // 400 + 80 + 40 = 520, CPU budget = 680 > demand 380 => untouched.
        let draw = resolve(&a, &d, &[Some(Watts(100.0)); 4], Some(Watts(1200.0)));
        assert!(draw.total().get() <= 1200.0 + 1e-9);
        assert_eq!(draw.cpu[0], Watts(190.0));

        // Tighter: GPUs at 260 demand uncapped per-GPU, node cap 1200 =>
        // fixed = 1040+80+40 = 1160, CPU budget max(40, 120) = idle floor.
        let draw = resolve(&a, &d, &[None; 4], Some(Watts(1200.0)));
        let cpu_total: Watts = draw.cpu.iter().copied().sum();
        assert_eq!(cpu_total, Watts(120.0), "CPU pinned to idle floor");
        assert!(draw.throttle.cpu < 0.01);
    }

    #[test]
    fn node_cap_partial_cpu_throttle() {
        let a = lassen();
        let d = demand(190.0, 100.0); // gpu under its own idle+dyn
                                      // fixed = 400 (gpu) + 80 + 40 = 520; cap 800 => cpu budget 280.
        let draw = resolve(&a, &d, &[None; 4], Some(Watts(800.0)));
        let cpu_total: Watts = draw.cpu.iter().copied().sum();
        assert!(cpu_total.approx_eq(Watts(280.0), 1e-6));
        // Dynamic ratio: (280-120)/(380-120) = 160/260.
        assert!((draw.throttle.cpu - 160.0 / 260.0).abs() < 1e-9);
        assert!(draw.total().get() <= 800.0 + 1e-9);
    }

    #[test]
    fn idle_demand_never_throttled() {
        let a = lassen();
        let d = PowerDemand::idle(&a);
        let draw = resolve(&a, &d, &[Some(Watts(100.0)); 4], Some(Watts(500.0)));
        assert_eq!(draw.throttle, Throttle::NONE);
        assert_eq!(draw.total(), a.idle_node_power());
    }

    #[test]
    fn demand_clamped_to_envelope() {
        let a = lassen();
        let mut d = demand(150.0, 260.0);
        d.gpu[0] = Watts(999.0); // beyond V100 peak
        d.cpu[0] = Watts(10.0); // below idle floor
        let draw = resolve(&a, &d, &[None; 4], None);
        assert_eq!(draw.gpu[0], Watts(300.0));
        assert_eq!(draw.cpu[0], Watts(60.0));
    }

    #[test]
    fn per_gpu_caps_are_independent() {
        let a = lassen();
        let d = demand(150.0, 260.0);
        let caps = [
            Some(Watts(100.0)),
            Some(Watts(200.0)),
            None,
            Some(Watts(300.0)),
        ];
        let draw = resolve(&a, &d, &caps, None);
        assert_eq!(draw.gpu[0], Watts(100.0));
        assert_eq!(draw.gpu[1], Watts(200.0));
        assert_eq!(draw.gpu[2], Watts(260.0));
        assert_eq!(draw.gpu[3], Watts(260.0));
        assert!(draw.gpu_throttle[0] < draw.gpu_throttle[1]);
        assert_eq!(draw.gpu_throttle[2], 1.0);
    }

    #[test]
    fn gpu_cap_below_idle_floors_at_idle() {
        let a = lassen();
        let d = demand(150.0, 260.0);
        let draw = resolve(&a, &d, &[Some(Watts(10.0)); 4], None);
        assert_eq!(draw.gpu[0], Watts(50.0), "cannot cap below idle");
    }

    #[test]
    fn total_demand_accounting() {
        let d = demand(150.0, 260.0);
        assert_eq!(d.total(), Watts(2.0 * 150.0 + 4.0 * 260.0 + 80.0 + 40.0));
    }
}
