//! Per-component energy integration.
//!
//! The experiment harness reports per-node and per-job energy (paper
//! Tables II–IV); this meter integrates piecewise-constant power draw over
//! simulated time.

use crate::power::PowerDraw;
use crate::units::{Joules, Watts};
use serde::{Deserialize, Serialize};

/// Accumulated energy per component group, plus peak-power tracking.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyMeter {
    /// Total node energy.
    pub total: Joules,
    /// CPU (all sockets).
    pub cpu: Joules,
    /// Memory subsystem.
    pub memory: Joules,
    /// GPUs (all devices).
    pub gpu: Joules,
    /// Board/uncore.
    pub other: Joules,
    /// Seconds integrated so far.
    pub elapsed_seconds: f64,
    /// Highest instantaneous node draw seen.
    pub peak: Watts,
}

impl EnergyMeter {
    /// A fresh meter.
    pub fn new() -> EnergyMeter {
        EnergyMeter::default()
    }

    /// Integrate `draw` held constant for `dt_seconds`.
    pub fn accumulate(&mut self, draw: &PowerDraw, dt_seconds: f64) {
        if dt_seconds <= 0.0 {
            return;
        }
        let cpu: Watts = draw.cpu.iter().copied().sum();
        let gpu: Watts = draw.gpu.iter().copied().sum();
        self.cpu += cpu.over_seconds(dt_seconds);
        self.gpu += gpu.over_seconds(dt_seconds);
        self.memory += draw.memory.over_seconds(dt_seconds);
        self.other += draw.other.over_seconds(dt_seconds);
        let total = draw.total();
        self.total += total.over_seconds(dt_seconds);
        self.elapsed_seconds += dt_seconds;
        self.peak = self.peak.max(total);
    }

    /// Average node power over the integrated interval.
    pub fn average_power(&self) -> Watts {
        self.total.average_over(self.elapsed_seconds)
    }

    /// Reset all accumulators.
    pub fn reset(&mut self) {
        *self = EnergyMeter::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::lassen;
    use crate::power::{resolve, PowerDemand};

    fn draw(cpu: f64, gpu: f64) -> PowerDraw {
        let a = lassen();
        let d = PowerDemand {
            cpu: vec![Watts(cpu); 2],
            memory: Watts(80.0),
            gpu: vec![Watts(gpu); 4],
            other: a.other,
        };
        resolve(&a, &d, &[None; 4], None)
    }

    #[test]
    fn component_sums_match_total() {
        let mut m = EnergyMeter::new();
        m.accumulate(&draw(150.0, 260.0), 10.0);
        let parts = m.cpu + m.gpu + m.memory + m.other;
        assert!((parts.get() - m.total.get()).abs() < 1e-9);
        assert_eq!(m.elapsed_seconds, 10.0);
    }

    #[test]
    fn average_power_is_energy_over_time() {
        let mut m = EnergyMeter::new();
        let d = draw(150.0, 260.0);
        m.accumulate(&d, 5.0);
        m.accumulate(&d, 5.0);
        assert!(m.average_power().approx_eq(d.total(), 1e-9));
    }

    #[test]
    fn peak_tracks_maximum() {
        let mut m = EnergyMeter::new();
        m.accumulate(&draw(100.0, 150.0), 1.0);
        let high = draw(190.0, 300.0);
        m.accumulate(&high, 1.0);
        m.accumulate(&draw(60.0, 50.0), 1.0);
        assert_eq!(m.peak, high.total());
    }

    #[test]
    fn zero_or_negative_dt_ignored() {
        let mut m = EnergyMeter::new();
        m.accumulate(&draw(150.0, 260.0), 0.0);
        m.accumulate(&draw(150.0, 260.0), -1.0);
        assert_eq!(m, EnergyMeter::new());
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = EnergyMeter::new();
        m.accumulate(&draw(150.0, 260.0), 3.0);
        m.reset();
        assert_eq!(m.total, Joules::ZERO);
        assert_eq!(m.peak, Watts::ZERO);
    }
}
