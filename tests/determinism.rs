//! Reproducibility: the whole stack must replay bit-identically from a
//! seed — the property every experiment in `fluxpm-experiments` depends
//! on.

use fluxpm::experiments::{JobRequest, PowerSetup, Scenario};
use fluxpm::hw::{MachineKind, Watts};
use fluxpm::manager::ManagerConfig;
use fluxpm::monitor::MonitorConfig;
use fluxpm::workloads::JitterModel;

fn scenario(seed: u64) -> Scenario {
    Scenario::new(MachineKind::Lassen, 8)
        .with_seed(seed)
        .with_jitter(JitterModel::default())
        .with_monitor(MonitorConfig::default())
        .with_power(PowerSetup::Managed {
            static_node_cap: Some(1950.0),
            config: ManagerConfig::fpp(Watts(9600.0)),
        })
        .with_job(JobRequest::new("GEMM", 6).with_work_scale(0.5))
        .with_job(JobRequest::new("Quicksilver", 2).with_work_seconds(90.0))
}

#[test]
fn same_seed_same_everything() {
    let a = scenario(0xC0FFEE).run();
    let b = scenario(0xC0FFEE).run();
    assert_eq!(a.jobs.len(), b.jobs.len());
    for (x, y) in a.jobs.iter().zip(b.jobs.iter()) {
        assert_eq!(x.runtime_s, y.runtime_s, "runtimes bit-identical");
        assert_eq!(x.energy_per_node_kj, y.energy_per_node_kj);
        assert_eq!(x.max_node_power_w, y.max_node_power_w);
        assert_eq!(x.nodes, y.nodes);
    }
    assert_eq!(a.cluster_max_w, b.cluster_max_w);
    assert_eq!(a.makespan_s, b.makespan_s);
    // Full telemetry identical, sample by sample.
    for (sa, sb) in a.node_series.iter().zip(b.node_series.iter()) {
        assert_eq!(sa, sb);
    }
}

#[test]
fn different_seeds_differ_in_noise_not_shape() {
    let a = scenario(1).run();
    let b = scenario(2).run();
    // Sensor noise and jitter differ...
    let diff = a.node_series[0]
        .iter()
        .zip(b.node_series[0].iter())
        .filter(|(x, y)| x.node_power_estimate() != y.node_power_estimate())
        .count();
    assert!(diff > 0, "different seeds must perturb telemetry");
    // ...but the physics stays put (runtimes within jitter tolerance:
    // Quicksilver at 2 nodes sits in the susceptible ~9 %-sigma regime,
    // GEMM at 6 nodes in the tight baseline regime).
    for (x, y) in a.jobs.iter().zip(b.jobs.iter()) {
        let rel = (x.runtime_s - y.runtime_s).abs() / x.runtime_s;
        let tol = if x.name == "Quicksilver" { 0.3 } else { 0.05 };
        assert!(rel < tol, "{}: {} vs {}", x.name, x.runtime_s, y.runtime_s);
    }
}

// ---------------------------------------------------------------------
// Sharded execution: partitioning the world across worker threads must
// not change what happened — only how fast it was computed.
// ---------------------------------------------------------------------

use fluxpm::experiments::sharded::sharded_storm_full;
use fluxpm::flux::shard::ShardStormConfig;
use proptest::prelude::*;

/// Render a merged record stream exactly as the trace artifacts do.
fn trace_bytes(records: &[fluxpm::flux::shard::ShardRecord]) -> String {
    let mut s = String::with_capacity(records.len() * 32);
    for r in records {
        s.push_str(&r.to_line());
        s.push('\n');
    }
    s
}

#[test]
fn sharded_trace_is_byte_identical_to_single_shard() {
    for seed in [7u64, 0xC0FFEE, 9_999_999_999] {
        let base = ShardStormConfig::new(80, 1, seed);
        let (one, out1) = sharded_storm_full(&base);
        let reference = trace_bytes(&one);
        assert!(!one.is_empty(), "seed {seed}: storm produced a trace");
        for shards in [2usize, 3, 4, 8] {
            let mut cfg = base;
            cfg.shards = shards;
            let (n, outn) = sharded_storm_full(&cfg);
            assert_eq!(
                trace_bytes(&n),
                reference,
                "seed {seed}, shards {shards}: merged trace must be \
                 byte-identical to the single-shard run"
            );
            assert_eq!(out1.trace_hash, outn.trace_hash);
            assert_eq!(out1.drops, outn.drops);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Conservative-window guarantee, observed from the outside: no
    /// matter how the tree is cut, boundary messages are delivered in
    /// timestamp order, so the merged trace is sorted and identical to
    /// the unsharded one.
    #[test]
    fn boundary_messages_never_violate_time_order(
        ranks in 8u32..120,
        shards in 2usize..6,
        seed in 0u64..1_000_000,
        fault_every in 0u32..9,
    ) {
        let mut cfg = ShardStormConfig::new(ranks, shards, seed);
        cfg.fault_every = fault_every;
        let (merged, out) = sharded_storm_full(&cfg);
        // Timestamps never regress in the merged stream.
        for w in merged.windows(2) {
            prop_assert!(
                w[0].at_us <= w[1].at_us,
                "time went backwards: {} then {}",
                w[0].to_line(),
                w[1].to_line()
            );
        }
        // And the sharded run saw exactly what one shard would have.
        cfg.shards = 1;
        let (solo, _) = sharded_storm_full(&cfg);
        prop_assert_eq!(out.trace_hash, fluxpm::flux::shard::records_hash(&solo));
        prop_assert_eq!(merged, solo);
    }
}

#[test]
fn run_many_equals_sequential_runs() {
    // The parallel sweep driver must not change results.
    let seq: Vec<f64> = (0..3)
        .map(|i| scenario(100 + i).run().jobs[0].runtime_s)
        .collect();
    let par: Vec<f64> =
        fluxpm::experiments::scenario::run_many((0..3).map(|i| scenario(100 + i)).collect())
            .iter()
            .map(|r| r.jobs[0].runtime_s)
            .collect();
    assert_eq!(seq, par);
}
