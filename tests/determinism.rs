//! Reproducibility: the whole stack must replay bit-identically from a
//! seed — the property every experiment in `fluxpm-experiments` depends
//! on.

use fluxpm::experiments::{JobRequest, PowerSetup, Scenario};
use fluxpm::hw::{MachineKind, Watts};
use fluxpm::manager::ManagerConfig;
use fluxpm::monitor::MonitorConfig;
use fluxpm::workloads::JitterModel;

fn scenario(seed: u64) -> Scenario {
    Scenario::new(MachineKind::Lassen, 8)
        .with_seed(seed)
        .with_jitter(JitterModel::default())
        .with_monitor(MonitorConfig::default())
        .with_power(PowerSetup::Managed {
            static_node_cap: Some(1950.0),
            config: ManagerConfig::fpp(Watts(9600.0)),
        })
        .with_job(JobRequest::new("GEMM", 6).with_work_scale(0.5))
        .with_job(JobRequest::new("Quicksilver", 2).with_work_seconds(90.0))
}

#[test]
fn same_seed_same_everything() {
    let a = scenario(0xC0FFEE).run();
    let b = scenario(0xC0FFEE).run();
    assert_eq!(a.jobs.len(), b.jobs.len());
    for (x, y) in a.jobs.iter().zip(b.jobs.iter()) {
        assert_eq!(x.runtime_s, y.runtime_s, "runtimes bit-identical");
        assert_eq!(x.energy_per_node_kj, y.energy_per_node_kj);
        assert_eq!(x.max_node_power_w, y.max_node_power_w);
        assert_eq!(x.nodes, y.nodes);
    }
    assert_eq!(a.cluster_max_w, b.cluster_max_w);
    assert_eq!(a.makespan_s, b.makespan_s);
    // Full telemetry identical, sample by sample.
    for (sa, sb) in a.node_series.iter().zip(b.node_series.iter()) {
        assert_eq!(sa, sb);
    }
}

#[test]
fn different_seeds_differ_in_noise_not_shape() {
    let a = scenario(1).run();
    let b = scenario(2).run();
    // Sensor noise and jitter differ...
    let diff = a.node_series[0]
        .iter()
        .zip(b.node_series[0].iter())
        .filter(|(x, y)| x.node_power_estimate() != y.node_power_estimate())
        .count();
    assert!(diff > 0, "different seeds must perturb telemetry");
    // ...but the physics stays put (runtimes within jitter tolerance:
    // Quicksilver at 2 nodes sits in the susceptible ~9 %-sigma regime,
    // GEMM at 6 nodes in the tight baseline regime).
    for (x, y) in a.jobs.iter().zip(b.jobs.iter()) {
        let rel = (x.runtime_s - y.runtime_s).abs() / x.runtime_s;
        let tol = if x.name == "Quicksilver" { 0.3 } else { 0.05 };
        assert!(rel < tol, "{}: {} vs {}", x.name, x.runtime_s, y.runtime_s);
    }
}

#[test]
fn run_many_equals_sequential_runs() {
    // The parallel sweep driver must not change results.
    let seq: Vec<f64> = (0..3)
        .map(|i| scenario(100 + i).run().jobs[0].runtime_s)
        .collect();
    let par: Vec<f64> =
        fluxpm::experiments::scenario::run_many((0..3).map(|i| scenario(100 + i)).collect())
            .iter()
            .map(|r| r.jobs[0].runtime_s)
            .collect();
    assert_eq!(seq, par);
}
