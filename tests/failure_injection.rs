//! Failure-injection integration tests: the production anomalies the
//! paper reports in §V, reproduced end-to-end.

use fluxpm::flux::{Engine, FluxEngine, JobSpec, JobState, Rank, World};
use fluxpm::hw::{MachineKind, NodeHardware, NodeId, Watts};
use fluxpm::monitor::{MonitorConfig, MonitorQuery};
use fluxpm::sim::{SimDuration, SimTime, Trace, TraceLevel};
use fluxpm::workloads::{laghos, App, JitterModel};
use std::cell::RefCell;
use std::rc::Rc;

/// §V: "on some nodes at a low node-level power cap (1200 W), NVIDIA GPU
/// power capping failed intermittently, either picking up the last set
/// power cap or defaulting to the maximum power cap."
#[test]
fn nvml_intermittent_failures_at_low_node_cap() {
    let arch = fluxpm::hw::lassen();
    let mut node = NodeHardware::new(NodeId(0), arch, 77).with_nvml_failure_injection(0.3);
    node.set_node_cap(Watts(1200.0)).unwrap();

    let mut applied = 0;
    let mut stale = 0;
    let mut reset = 0;
    for attempt in 0..200 {
        let target = if attempt % 2 == 0 { 150.0 } else { 120.0 };
        match node.set_gpu_cap(attempt % 4, Watts(target)).unwrap() {
            fluxpm::hw::CapOutcome::Applied(_) => applied += 1,
            fluxpm::hw::CapOutcome::StalePrevious(_) => stale += 1,
            fluxpm::hw::CapOutcome::ResetToDefault(w) => {
                assert_eq!(w, Watts(300.0));
                reset += 1;
            }
        }
    }
    assert!(applied > 100, "most sets succeed: {applied}");
    assert!(
        stale > 5 && reset > 5,
        "both failure modes occur: {stale}/{reset}"
    );
    assert_eq!(node.nvml.failure_count() as usize, stale + reset);

    // At a high node cap the same node never fails.
    node.set_node_cap(Watts(1950.0)).unwrap();
    for _ in 0..50 {
        assert!(node.set_gpu_cap(0, Watts(200.0)).unwrap().succeeded());
    }
}

/// Buffer wrap produces the "partial" completeness flag end-to-end: a job
/// longer than the buffer window loses its earliest samples.
#[test]
fn buffer_wrap_yields_partial_job_data() {
    let mut world = World::new(MachineKind::Lassen, 2, 21);
    world.autostop_after = Some(1);
    let mut eng: FluxEngine = Engine::new();
    // Tiny buffer: 20 records at 2 s sampling = a 40 s retention window.
    let cfg = MonitorConfig::default().with_buffer_capacity(20);
    fluxpm::monitor::load(&mut world, &mut eng, cfg);
    world.install_executor(&mut eng);
    // A ~100 s job overflows the window.
    let app = App::with_jitter(laghos(), MachineKind::Lassen, 1, 1, JitterModel::none())
        .with_work_seconds(100.0);
    let id = world.submit(&mut eng, JobSpec::new("Laghos", 1), Box::new(app));
    eng.run(&mut world);

    let mut eng2: FluxEngine = Engine::new();
    let query = MonitorQuery::job_data(id).send(&mut world, &mut eng2);
    eng2.run(&mut world);
    let reply = query.job_data().unwrap().unwrap();
    assert!(
        !reply.all_complete(),
        "wrapped buffer must flag partial data"
    );
    assert_eq!(reply.nodes[0].records.len(), 20, "only the retained window");
    // The CSV carries the partial flag.
    let csv = fluxpm::monitor::job_data_to_csv(&reply);
    assert!(csv.contains("partial"));
}

/// Monitor sampling keeps running (and stays bounded) across many jobs —
/// the stateless design never accumulates per-job state.
#[test]
fn node_agent_state_is_bounded_across_jobs() {
    let mut world = World::new(MachineKind::Lassen, 2, 33);
    world.autostop_after = Some(6);
    let mut eng: FluxEngine = Engine::new();
    let agent = fluxpm::monitor::NodeAgent::shared(
        MonitorConfig::default()
            .with_sample_interval(SimDuration::from_secs(1))
            .with_buffer_capacity(50),
    );
    world.load_module(&mut eng, fluxpm::flux::Rank(0), agent.clone());
    world.install_executor(&mut eng);
    for i in 0..6u64 {
        let app = App::with_jitter(laghos(), MachineKind::Lassen, 2, i, JitterModel::none());
        world.submit(&mut eng, JobSpec::new("Laghos", 2), Box::new(app));
    }
    eng.run(&mut world);
    let a = agent.borrow();
    assert!(a.retained() <= 50, "ring buffer bounded: {}", a.retained());
    assert!(a.samples_taken() > 50, "sampling continued across jobs");
    assert_eq!(a.samples_taken() - a.retained() as u64, a.overwritten());
}

/// Tioga gracefully refuses capping while telemetry keeps working — the
/// early-access posture from §II-A.
#[test]
fn tioga_cap_refusal_does_not_break_management() {
    let mut world = World::new(MachineKind::Tioga, 4, 55);
    world.autostop_after = Some(1);
    let mut eng: FluxEngine = Engine::new();
    fluxpm::manager::load(
        &mut world,
        &mut eng,
        fluxpm::manager::ManagerConfig::proportional(Watts(4000.0)),
    );
    fluxpm::monitor::load(&mut world, &mut eng, MonitorConfig::default());
    world.install_executor(&mut eng);
    let app = App::with_jitter(laghos(), MachineKind::Tioga, 2, 1, JitterModel::none());
    let id = world.submit(&mut eng, JobSpec::new("Laghos", 2), Box::new(app));
    eng.run(&mut world);
    assert!(world.jobs.get(id).unwrap().runtime_seconds().is_some());

    let mut eng2: FluxEngine = Engine::new();
    let query = MonitorQuery::job_data(id).send(&mut world, &mut eng2);
    eng2.run(&mut world);
    let reply = query.job_data().unwrap().unwrap();
    assert!(
        reply.sample_count() > 0,
        "telemetry unaffected by cap refusal"
    );
    // No sample carries a direct node reading on Tioga.
    for node in &reply.nodes {
        for r in &node.records {
            assert!(r.sample.power_node_watts.is_none());
        }
    }
}

/// §V: "Kripke execution failed on the Tioga system" — the program
/// crashes, the job transitions to Failed, and the queue moves on.
#[test]
fn kripke_crashes_on_tioga_but_runs_on_lassen() {
    use fluxpm::flux::JobState;
    use fluxpm::workloads::kripke;

    // Lassen: runs fine.
    let mut w = World::new(MachineKind::Lassen, 4, 3);
    w.autostop_after = Some(1);
    let mut eng: FluxEngine = Engine::new();
    w.install_executor(&mut eng);
    let app = App::with_jitter(kripke(), MachineKind::Lassen, 4, 1, JitterModel::none());
    let id = w.submit(&mut eng, JobSpec::new("Kripke", 4), Box::new(app));
    eng.run(&mut w);
    assert_eq!(w.jobs.get(id).unwrap().state, JobState::Completed);
    let rt = w.jobs.get(id).unwrap().runtime_seconds().unwrap();
    assert!((rt - 45.0).abs() < 3.0, "{rt}");

    // Tioga: crashes at the first slice; a queued job still runs after.
    let mut w = World::new(MachineKind::Tioga, 4, 3);
    w.trace = fluxpm::sim::Trace::enabled(fluxpm::sim::TraceLevel::Warn);
    w.autostop_after = Some(2);
    let mut eng: FluxEngine = Engine::new();
    w.install_executor(&mut eng);
    let doomed = App::with_jitter(kripke(), MachineKind::Tioga, 4, 1, JitterModel::none());
    let a = w.submit(&mut eng, JobSpec::new("Kripke", 4), Box::new(doomed));
    let follow = App::with_jitter(laghos(), MachineKind::Tioga, 4, 2, JitterModel::none());
    let b = w.submit(&mut eng, JobSpec::new("Laghos", 4), Box::new(follow));
    eng.run(&mut w);
    assert_eq!(w.jobs.get(a).unwrap().state, JobState::Failed);
    assert_eq!(w.jobs.get(b).unwrap().state, JobState::Completed);
    assert!(
        w.trace
            .for_subsystem("job")
            .any(|e| e.message.contains("crashed") && e.message.contains("Kripke does not run")),
        "crash reason traced"
    );
    assert_eq!(w.sched.free_count(), 4, "crashed job's nodes reclaimed");
}

/// The tentpole scenario: an *interior* TBON rank dies mid-reduction.
///
/// 7-node binary tree (rank 1 parents ranks 3 and 4). A tree-stats query
/// enters at t = 30 s; rank 1 is failed 50 µs later — after it has fanned
/// out to its children but before their responses arrive. The overlay is
/// severed (nothing from or through rank 1 is delivered again), rank 1's
/// pending RPCs are cancelled, and its orphans (ranks 3 and 4) re-parent
/// under the root. When the root's per-child deadline on rank 1 fires, the
/// reduction *re-fans* to the re-parented survivors: the reply carries
/// every live rank's data and only the dead rank is missing. Same-seed
/// runs must be byte-identical.
#[test]
fn interior_rank_failure_mid_reduction_completes_incomplete() {
    let fail_at = SimTime::from_micros(30_000_050);

    let run = || {
        let mut w = World::new(MachineKind::Lassen, 7, 99);
        w.trace = Trace::enabled(TraceLevel::Debug);
        w.autostop_after = Some(1);
        let mut eng: FluxEngine = Engine::new();
        fluxpm::monitor::load(&mut w, &mut eng, MonitorConfig::default());
        w.install_executor(&mut eng);
        let app = App::with_jitter(laghos(), MachineKind::Lassen, 7, 1, JitterModel::none())
            .with_work_seconds(100.0);
        let id = w.submit(&mut eng, JobSpec::new("Laghos", 7), Box::new(app));

        // Query mid-run; the reduction is in flight when rank 1 dies.
        let slot = Rc::new(RefCell::new(None));
        let slot2 = Rc::clone(&slot);
        eng.schedule(SimTime::from_secs(30), move |w: &mut World, eng| {
            let inner = MonitorQuery::job_stats_tree(id).send(w, eng);
            *slot2.borrow_mut() = Some(inner);
        });
        eng.schedule(fail_at, move |w: &mut World, eng| {
            w.fail_node(eng, NodeId(1));
        });
        eng.run(&mut w);

        let outer = slot.borrow().clone().unwrap();
        let stats = outer.subtree_stats().unwrap().unwrap();
        let trace: String = w.trace.entries().iter().map(|e| format!("{e}\n")).collect();
        (w, id, stats, trace)
    };

    let (w, id, stats, trace) = run();

    // The reduction finished despite the dead interior rank, flagged
    // incomplete — but only rank 1 itself is missing: its orphans were
    // re-parented under the root and the deadline handler re-fanned the
    // query out to them.
    assert!(!stats.all_complete, "dead rank must flag incomplete");
    assert_eq!(
        stats.nodes, 6,
        "every live rank contributes after the re-fan: {stats:?}"
    );
    assert!(stats.samples > 0, "surviving subtree carried data");
    assert!(
        trace.contains("re-parented 2 orphan(s) of rank1 under rank0"),
        "orphans re-attached to the nearest live ancestor"
    );

    // Exactly the root's deadline on rank 1 fired; no matchtag leaked.
    assert_eq!(w.rpc_timeout_count(), 1, "one per-child deadline fired");
    assert_eq!(w.pending_rpc_count(), 0, "no leaked matchtags");
    assert!(!w.broker_up(Rank(1)));
    assert_eq!(w.jobs.get(id).unwrap().state, JobState::Failed);

    // The overlay is severed: nothing originating at rank 1 is delivered
    // after the failure instant, and in-flight traffic was dropped.
    assert!(
        !w.trace
            .for_subsystem("tbon")
            .any(|e| e.at >= fail_at && e.message.starts_with("deliver rank1 ")),
        "no message delivered from the dead rank after failure"
    );
    assert!(
        w.trace
            .for_subsystem("tbon")
            .any(|e| e.at >= fail_at && e.message.starts_with("sever:")),
        "in-flight traffic to/through the dead rank was dropped"
    );

    // Determinism: a second identical run replays byte-for-byte.
    let (w2, _, stats2, trace2) = run();
    assert_eq!(trace, trace2, "same-seed runs must be byte-identical");
    assert_eq!(stats, stats2);
    assert_eq!(w.rpc_timeout_count(), w2.rpc_timeout_count());
}

/// Chaos test: random per-link message loss and latency jitter under the
/// monitor's fan-out aggregation. Retries mask the drops, every matchtag
/// is retired, and the whole run — drops included — replays bit-for-bit
/// from the seed.
#[test]
fn chaos_faults_are_deterministic_and_aggregation_completes() {
    let run = |seed: u64| {
        let mut w = World::new(MachineKind::Lassen, 8, seed);
        w.trace = Trace::enabled(TraceLevel::Warn);
        w.autostop_after = Some(1);
        let mut eng: FluxEngine = Engine::new();
        fluxpm::monitor::load(&mut w, &mut eng, MonitorConfig::default());
        w.install_executor(&mut eng);
        w.inject_faults(0.25, SimDuration::from_micros(50));
        let app = App::with_jitter(laghos(), MachineKind::Lassen, 8, seed, JitterModel::none())
            .with_work_seconds(60.0);
        let id = w.submit(&mut eng, JobSpec::new("Laghos", 8), Box::new(app));
        eng.run(&mut w);

        // Post-run stats aggregation across the lossy overlay.
        let mut eng2: FluxEngine = Engine::new();
        let query = MonitorQuery::job_stats(id).send(&mut w, &mut eng2);
        eng2.run(&mut w);
        let reply = query.job_stats();
        let trace: String = w.trace.entries().iter().map(|e| format!("{e}\n")).collect();
        (
            trace,
            w.fault_drops(),
            w.rpc_timeout_count(),
            w.rpc_retry_count(),
            w.pending_rpc_count(),
            reply,
        )
    };

    let (trace_a, drops_a, timeouts_a, retries_a, pending_a, reply_a) = run(5);
    let (trace_b, drops_b, timeouts_b, retries_b, pending_b, _) = run(5);

    // The aggregation completed despite the chaos, and nothing leaked.
    let reply = reply_a.expect("aggregation must complete under faults");
    let reply = reply.expect("root agent replies (possibly partial)");
    assert_eq!(reply.nodes.len(), 8, "every target answered or timed out");
    assert_eq!(pending_a, 0, "all matchtags retired");
    assert_eq!(pending_b, 0);
    assert!(drops_a > 0, "the plan actually dropped traffic");

    // Byte-identical replay from the same seed.
    assert_eq!(trace_a, trace_b);
    assert_eq!(drops_a, drops_b);
    assert_eq!(timeouts_a, timeouts_b);
    assert_eq!(retries_a, retries_b);

    // A different seed shuffles the chaos.
    let (trace_c, ..) = run(6);
    assert_ne!(trace_a, trace_c, "different seed, different fault pattern");
}
