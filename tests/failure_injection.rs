//! Failure-injection integration tests: the production anomalies the
//! paper reports in §V, reproduced end-to-end.

use fluxpm::flux::{Engine, FluxEngine, JobSpec, World};
use fluxpm::hw::{MachineKind, NodeHardware, NodeId, Watts};
use fluxpm::monitor::{fetch_job_data, MonitorConfig};
use fluxpm::sim::SimDuration;
use fluxpm::workloads::{laghos, App, JitterModel};

/// §V: "on some nodes at a low node-level power cap (1200 W), NVIDIA GPU
/// power capping failed intermittently, either picking up the last set
/// power cap or defaulting to the maximum power cap."
#[test]
fn nvml_intermittent_failures_at_low_node_cap() {
    let arch = fluxpm::hw::lassen();
    let mut node = NodeHardware::new(NodeId(0), arch, 77).with_nvml_failure_injection(0.3);
    node.set_node_cap(Watts(1200.0)).unwrap();

    let mut applied = 0;
    let mut stale = 0;
    let mut reset = 0;
    for attempt in 0..200 {
        let target = if attempt % 2 == 0 { 150.0 } else { 120.0 };
        match node.set_gpu_cap(attempt % 4, Watts(target)).unwrap() {
            fluxpm::hw::CapOutcome::Applied(_) => applied += 1,
            fluxpm::hw::CapOutcome::StalePrevious(_) => stale += 1,
            fluxpm::hw::CapOutcome::ResetToDefault(w) => {
                assert_eq!(w, Watts(300.0));
                reset += 1;
            }
        }
    }
    assert!(applied > 100, "most sets succeed: {applied}");
    assert!(
        stale > 5 && reset > 5,
        "both failure modes occur: {stale}/{reset}"
    );
    assert_eq!(node.nvml.failure_count() as usize, stale + reset);

    // At a high node cap the same node never fails.
    node.set_node_cap(Watts(1950.0)).unwrap();
    for _ in 0..50 {
        assert!(node.set_gpu_cap(0, Watts(200.0)).unwrap().succeeded());
    }
}

/// Buffer wrap produces the "partial" completeness flag end-to-end: a job
/// longer than the buffer window loses its earliest samples.
#[test]
fn buffer_wrap_yields_partial_job_data() {
    let mut world = World::new(MachineKind::Lassen, 2, 21);
    world.autostop_after = Some(1);
    let mut eng: FluxEngine = Engine::new();
    // Tiny buffer: 20 records at 2 s sampling = a 40 s retention window.
    let cfg = MonitorConfig::default().with_buffer_capacity(20);
    fluxpm::monitor::load(&mut world, &mut eng, cfg);
    world.install_executor(&mut eng);
    // A ~100 s job overflows the window.
    let app = App::with_jitter(laghos(), MachineKind::Lassen, 1, 1, JitterModel::none())
        .with_work_seconds(100.0);
    let id = world.submit(&mut eng, JobSpec::new("Laghos", 1), Box::new(app));
    eng.run(&mut world);

    let mut eng2: FluxEngine = Engine::new();
    let slot = fetch_job_data(&mut world, &mut eng2, id);
    eng2.run(&mut world);
    let reply = slot.borrow().clone().unwrap().unwrap();
    assert!(
        !reply.all_complete(),
        "wrapped buffer must flag partial data"
    );
    assert_eq!(reply.nodes[0].records.len(), 20, "only the retained window");
    // The CSV carries the partial flag.
    let csv = fluxpm::monitor::job_data_to_csv(&reply);
    assert!(csv.contains("partial"));
}

/// Monitor sampling keeps running (and stays bounded) across many jobs —
/// the stateless design never accumulates per-job state.
#[test]
fn node_agent_state_is_bounded_across_jobs() {
    let mut world = World::new(MachineKind::Lassen, 2, 33);
    world.autostop_after = Some(6);
    let mut eng: FluxEngine = Engine::new();
    let agent = fluxpm::monitor::NodeAgent::shared(
        MonitorConfig::default()
            .with_sample_interval(SimDuration::from_secs(1))
            .with_buffer_capacity(50),
    );
    world.load_module(&mut eng, fluxpm::flux::Rank(0), agent.clone());
    world.install_executor(&mut eng);
    for i in 0..6u64 {
        let app = App::with_jitter(laghos(), MachineKind::Lassen, 2, i, JitterModel::none());
        world.submit(&mut eng, JobSpec::new("Laghos", 2), Box::new(app));
    }
    eng.run(&mut world);
    let a = agent.borrow();
    assert!(a.retained() <= 50, "ring buffer bounded: {}", a.retained());
    assert!(a.samples_taken() > 50, "sampling continued across jobs");
    assert_eq!(a.samples_taken() - a.retained() as u64, a.overwritten());
}

/// Tioga gracefully refuses capping while telemetry keeps working — the
/// early-access posture from §II-A.
#[test]
fn tioga_cap_refusal_does_not_break_management() {
    let mut world = World::new(MachineKind::Tioga, 4, 55);
    world.autostop_after = Some(1);
    let mut eng: FluxEngine = Engine::new();
    fluxpm::manager::load(
        &mut world,
        &mut eng,
        fluxpm::manager::ManagerConfig::proportional(Watts(4000.0)),
    );
    fluxpm::monitor::load(&mut world, &mut eng, MonitorConfig::default());
    world.install_executor(&mut eng);
    let app = App::with_jitter(laghos(), MachineKind::Tioga, 2, 1, JitterModel::none());
    let id = world.submit(&mut eng, JobSpec::new("Laghos", 2), Box::new(app));
    eng.run(&mut world);
    assert!(world.jobs.get(id).unwrap().runtime_seconds().is_some());

    let mut eng2: FluxEngine = Engine::new();
    let slot = fetch_job_data(&mut world, &mut eng2, id);
    eng2.run(&mut world);
    let reply = slot.borrow().clone().unwrap().unwrap();
    assert!(
        reply.sample_count() > 0,
        "telemetry unaffected by cap refusal"
    );
    // No sample carries a direct node reading on Tioga.
    for node in &reply.nodes {
        for r in &node.records {
            assert!(r.sample.power_node_watts.is_none());
        }
    }
}

/// §V: "Kripke execution failed on the Tioga system" — the program
/// crashes, the job transitions to Failed, and the queue moves on.
#[test]
fn kripke_crashes_on_tioga_but_runs_on_lassen() {
    use fluxpm::flux::JobState;
    use fluxpm::workloads::kripke;

    // Lassen: runs fine.
    let mut w = World::new(MachineKind::Lassen, 4, 3);
    w.autostop_after = Some(1);
    let mut eng: FluxEngine = Engine::new();
    w.install_executor(&mut eng);
    let app = App::with_jitter(kripke(), MachineKind::Lassen, 4, 1, JitterModel::none());
    let id = w.submit(&mut eng, JobSpec::new("Kripke", 4), Box::new(app));
    eng.run(&mut w);
    assert_eq!(w.jobs.get(id).unwrap().state, JobState::Completed);
    let rt = w.jobs.get(id).unwrap().runtime_seconds().unwrap();
    assert!((rt - 45.0).abs() < 3.0, "{rt}");

    // Tioga: crashes at the first slice; a queued job still runs after.
    let mut w = World::new(MachineKind::Tioga, 4, 3);
    w.trace = fluxpm::sim::Trace::enabled(fluxpm::sim::TraceLevel::Warn);
    w.autostop_after = Some(2);
    let mut eng: FluxEngine = Engine::new();
    w.install_executor(&mut eng);
    let doomed = App::with_jitter(kripke(), MachineKind::Tioga, 4, 1, JitterModel::none());
    let a = w.submit(&mut eng, JobSpec::new("Kripke", 4), Box::new(doomed));
    let follow = App::with_jitter(laghos(), MachineKind::Tioga, 4, 2, JitterModel::none());
    let b = w.submit(&mut eng, JobSpec::new("Laghos", 4), Box::new(follow));
    eng.run(&mut w);
    assert_eq!(w.jobs.get(a).unwrap().state, JobState::Failed);
    assert_eq!(w.jobs.get(b).unwrap().state, JobState::Completed);
    assert!(
        w.trace
            .for_subsystem("job")
            .any(|e| e.message.contains("crashed") && e.message.contains("Kripke does not run")),
        "crash reason traced"
    );
    assert_eq!(w.sched.free_count(), 4, "crashed job's nodes reclaimed");
}
