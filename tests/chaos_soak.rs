//! Chaos-soak: seeded fail/recover storms against the live power stack.
//!
//! Each soak drives a 16-node instance through a scripted storm prefix
//! (two interior ranks dying in one batch, a node re-failing 50 µs after
//! its recovery, the root dying mid-storm) followed by seeded random
//! fail/recover ticks — all while the monitor samples, the manager
//! enforces budgets, jobs churn through the queue, per-link burst faults
//! drop traffic, and a periodic re-balance pass restores k-ary shape.
//!
//! Invariants are asserted every simulated second (root attached and
//! alive, every attached rank reachable and acyclic, topology epoch
//! monotone), and the whole storm must replay byte-for-byte from its
//! seed. The fixed seeds below are the CI matrix; keep the storm length
//! capped so the suite stays fast.

use fluxpm::flux::{
    Engine, FaultPlan, FluxEngine, GilbertElliott, JobId, JobSpec, JobState, LinkProfile, Rank,
    SharedModule, Tbon, World,
};
use fluxpm::hw::{MachineKind, NodeId, Watts};
use fluxpm::monitor::{MonitorConfig, MonitorQuery};
use fluxpm::sim::{SimDuration, SimTime, Trace, TraceLevel, Xoshiro256pp};
use fluxpm::workloads::{laghos, App, JitterModel};
use std::cell::{Cell, RefCell};
use std::ops::ControlFlow;
use std::rc::Rc;

mod common;

const NODES: u32 = 16;
const GLOBAL_BOUND_W: f64 = 16.0 * 1500.0;
/// Random storm ticks run every 5 s in [40 s, 85 s]; the storm is over by
/// 95 s and the run self-halts once the last job completes (~135 s).
const RANDOM_TICKS: u64 = 10;
/// The random ticks never take the live-broker count below this.
const MIN_LIVE: usize = 6;

/// Everything a soak produces that a replay must reproduce exactly.
#[derive(Debug, Clone, PartialEq)]
struct Outcome {
    trace: String,
    drops: u64,
    timeouts: u64,
    retries: u64,
    epoch: u64,
    /// `(all_complete, nodes, samples)` of the mid-storm degraded query.
    degraded: (bool, usize, usize),
    /// `(job, limit_w)` budget snapshot after the storm settles.
    limits: Vec<(JobId, f64)>,
    invariant_checks: u64,
}

fn two_node_app(seed: u64, work_seconds: f64) -> Box<App> {
    Box::new(
        App::with_jitter(laghos(), MachineKind::Lassen, 2, seed, JitterModel::none())
            .with_work_seconds(work_seconds),
    )
}

/// One full storm. Asserts invariants along the way and returns the
/// deterministic outcome for byte-identical replay comparison.
fn soak(seed: u64) -> Outcome {
    let mut w = World::new(MachineKind::Lassen, NODES, seed);
    w.trace = Trace::enabled(TraceLevel::Debug);
    // 10 jobs total: A, B, 7 queue fillers, and the post-storm probe F.
    w.autostop_after = Some(10);
    let mut eng: FluxEngine = Engine::new();
    eng.set_horizon(SimTime::from_secs(400));

    // Manager stack loaded by hand (the test keeps the cluster handle to
    // watch budgets; root services migrate as the same shared object).
    let cfg = fluxpm::manager::ManagerConfig::proportional(Watts(GLOBAL_BOUND_W));
    let cluster = fluxpm::manager::ClusterLevelManager::shared(cfg.clone());
    for rank in w.tbon.ranks().collect::<Vec<_>>() {
        let m = fluxpm::manager::NodeLevelManager::shared_with_target(
            cfg.policy,
            cfg.fpp.clone(),
            cfg.fpp_target,
        );
        w.load_module(&mut eng, rank, m);
    }
    w.load_module(
        &mut eng,
        Rank(0),
        fluxpm::manager::JobLevelManager::shared(),
    );
    w.load_module(&mut eng, Rank(0), cluster.clone());
    {
        let cfg = cfg.clone();
        w.register_module_factory(move |_rank| -> SharedModule {
            fluxpm::manager::NodeLevelManager::shared_with_target(
                cfg.policy,
                cfg.fpp.clone(),
                cfg.fpp_target,
            )
        });
    }
    fluxpm::monitor::load(&mut w, &mut eng, MonitorConfig::default());
    w.install_executor(&mut eng);

    // Per-link burst faults: a lightly lossy default with Gilbert–Elliott
    // bursts, plus a worse dedicated profile on the root's first link.
    // Burst channels *replace* the uniform base loss, so the good state
    // carries the light base loss itself; bursts then spike it to 50 %.
    let ge = GilbertElliott {
        p_good_to_bad: 0.01,
        p_bad_to_good: 0.2,
        good_drop_prob: 0.02,
        bad_drop_prob: 0.5,
    };
    let ge_root = GilbertElliott {
        good_drop_prob: 0.08,
        ..ge
    };
    w.install_fault_plan(
        FaultPlan::uniform(0.02, SimDuration::from_micros(20))
            .with_burst(ge)
            .with_link(
                Rank(0),
                Rank(1),
                LinkProfile::uniform(0.08, SimDuration::from_micros(40)).with_burst(ge_root),
            ),
    );
    w.schedule_rebalance(&mut eng, SimDuration::from_secs(7));

    // Long-running jobs: A pins ranks 0-7 and dies in the first batch
    // kill, B (ranks 8-11) completes if the random storm spares it.
    let app_a = App::with_jitter(laghos(), MachineKind::Lassen, 8, 1, JitterModel::none())
        .with_work_seconds(300.0);
    let a = w.submit(&mut eng, JobSpec::new("Laghos", 8), Box::new(app_a));
    let app_b = App::with_jitter(laghos(), MachineKind::Lassen, 4, 2, JitterModel::none())
        .with_work_seconds(60.0);
    let _b = w.submit(&mut eng, JobSpec::new("Laghos", 4), Box::new(app_b));
    // A trickle of short jobs keeps the scheduler and the budget
    // allocator churning through the whole storm.
    for k in 0..7u64 {
        eng.schedule(SimTime::from_secs(6 + 12 * k), move |w: &mut World, eng| {
            w.submit(eng, JobSpec::new("Laghos", 2), two_node_app(100 + k, 8.0));
        });
    }

    // Per-tick invariants: epoch monotone, root attached and alive, and
    // every attached rank alive, routable, and on an acyclic parent
    // chain.
    let last_epoch = Rc::new(Cell::new(0u64));
    let checks = Rc::new(Cell::new(0u64));
    {
        let last_epoch = Rc::clone(&last_epoch);
        let checks = Rc::clone(&checks);
        eng.schedule_every(
            SimTime::from_secs(1),
            SimDuration::from_secs(1),
            move |w: &mut World, eng| {
                if w.halted {
                    return ControlFlow::Break(());
                }
                let now = eng.now();
                let e = w.tbon.epoch();
                assert!(
                    e >= last_epoch.get(),
                    "epoch went backwards at {now}: {} -> {e}",
                    last_epoch.get()
                );
                last_epoch.set(e);
                let root = w.tbon.root();
                assert!(w.tbon.is_attached(root), "root detached at {now}");
                assert!(w.broker_up(root), "root down at {now}");
                let size = w.size();
                for r in w.tbon.attached_ranks() {
                    assert!(w.broker_up(r), "{r} attached but down at {now}");
                    assert!(w.tbon.route(r, root).is_some(), "{r} unroutable at {now}");
                    let mut probe = r;
                    let mut hops = 0;
                    while probe != root {
                        probe = w
                            .tbon
                            .parent(probe)
                            .unwrap_or_else(|| panic!("{probe} has no parent at {now}"));
                        assert!(w.tbon.is_attached(probe), "parent chain of {r} detached");
                        hops += 1;
                        assert!(hops <= size, "cycle walking up from {r} at {now}");
                    }
                }
                checks.set(checks.get() + 1);
                ControlFlow::Continue(())
            },
        );
    }

    // --- Scripted storm prefix -------------------------------------
    // t=15: two interior ranks die in ONE batch (overlapping failures).
    eng.schedule(SimTime::from_secs(15), move |w: &mut World, eng| {
        w.fail_nodes(eng, &[NodeId(1), NodeId(2)]);
    });
    // t=20: degraded query against job A while ranks 1-2 are down — the
    // reduction must finish and must NOT fabricate completeness.
    let degraded = Rc::new(RefCell::new(None));
    {
        let degraded = Rc::clone(&degraded);
        eng.schedule(SimTime::from_secs(20), move |w: &mut World, eng| {
            *degraded.borrow_mut() = Some(MonitorQuery::job_stats_tree(a).send(w, eng));
        });
    }
    // t=25: recovery of rank 1 overlaps a fresh failure (rank 4) ...
    eng.schedule(SimTime::from_secs(25), move |w: &mut World, eng| {
        assert!(w.recover_node(eng, NodeId(1)));
        w.fail_nodes(eng, &[NodeId(4)]);
    });
    // ... and rank 1 is killed again 50 µs into its own recovery, while
    // its freshly reloaded modules are still arming timers.
    eng.schedule(
        SimTime::from_micros(25_000_050),
        move |w: &mut World, eng| {
            w.fail_nodes(eng, &[NodeId(1)]);
        },
    );
    eng.schedule(SimTime::from_secs(30), move |w: &mut World, eng| {
        assert!(w.recover_node(eng, NodeId(2)));
        assert!(w.recover_node(eng, NodeId(4)));
    });
    eng.schedule(SimTime::from_secs(32), move |w: &mut World, eng| {
        assert!(w.recover_node(eng, NodeId(1)));
    });
    // t=35: the root dies mid-storm; a successor must be elected and the
    // root services must migrate with it.
    eng.schedule(SimTime::from_secs(35), move |w: &mut World, eng| {
        let root = w.root();
        w.fail_nodes(eng, &[NodeId(root.0)]);
    });

    // --- Seeded random storm ticks ---------------------------------
    for k in 0..RANDOM_TICKS {
        let at = SimTime::from_secs(40 + 5 * k);
        eng.schedule(at, move |w: &mut World, eng| {
            let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 0xC0FFEE ^ (k << 32));
            // Recover first so a just-recovered node can be re-killed in
            // the same tick.
            for i in 0..w.size() {
                if !w.broker_up(Rank(i)) && rng.chance(0.45) {
                    assert!(w.recover_node(eng, NodeId(i)), "guarded: broker was down");
                }
            }
            let mut up: Vec<u32> = (0..w.size()).filter(|&i| w.broker_up(Rank(i))).collect();
            let spare = up.len().saturating_sub(MIN_LIVE);
            let kill = spare.min(1 + rng.below(2) as usize);
            let mut victims = Vec::new();
            for _ in 0..kill {
                let idx = rng.below(up.len() as u64) as usize;
                victims.push(NodeId(up.remove(idx)));
            }
            if !victims.is_empty() {
                w.fail_nodes(eng, &victims);
            }
        });
    }

    // --- Storm over: recover everything and let the system settle ---
    eng.schedule(SimTime::from_secs(95), move |w: &mut World, eng| {
        for i in 0..w.size() {
            if !w.broker_up(Rank(i)) {
                assert!(w.recover_node(eng, NodeId(i)), "guarded: broker was down");
            }
        }
    });
    eng.schedule(SimTime::from_secs(98), move |w: &mut World, _eng| {
        w.install_fault_plan(FaultPlan::uniform(0.0, SimDuration::ZERO));
    });
    // Post-storm probe job F over the healed overlay.
    let f_slot = Rc::new(RefCell::new(None));
    {
        let f_slot = Rc::clone(&f_slot);
        eng.schedule(SimTime::from_secs(100), move |w: &mut World, eng| {
            let app = App::with_jitter(laghos(), MachineKind::Lassen, 6, 9, JitterModel::none())
                .with_work_seconds(30.0);
            let id = w.submit(eng, JobSpec::new("Laghos", 6), Box::new(app));
            *f_slot.borrow_mut() = Some(id);
        });
    }
    // Budgets re-converged: every surviving limit belongs to a running
    // job, the probe job is budgeted, and the global bound holds.
    let limits_slot = Rc::new(RefCell::new(Vec::new()));
    {
        let limits_slot = Rc::clone(&limits_slot);
        let f_slot = Rc::clone(&f_slot);
        let cluster = Rc::clone(&cluster);
        eng.schedule(SimTime::from_secs(110), move |w: &mut World, _eng| {
            let limits = cluster.borrow().job_limits();
            let f = f_slot.borrow().expect("probe job was submitted");
            assert!(
                limits.iter().any(|&(id, _)| id == f),
                "probe job must be budgeted after the storm: {limits:?}"
            );
            let mut sum = 0.0;
            for &(id, watts) in &limits {
                assert!(watts.get() > 0.0, "zero budget for {id:?}");
                // A job completing at this very instant may have its
                // reclaim one event-latency behind the snapshot; a
                // *failed* job's budget must already be gone.
                let state = w.jobs.get(id).unwrap().state;
                assert!(
                    matches!(state, JobState::Running | JobState::Completed),
                    "budget held by a {state:?} job {id:?}"
                );
                sum += watts.get();
            }
            assert!(sum <= GLOBAL_BOUND_W + 1e-6, "over the global bound: {sum}");
            *limits_slot.borrow_mut() = limits
                .iter()
                .map(|&(id, watts)| (id, watts.get()))
                .collect();
        });
    }

    eng.run(&mut w);

    // --- Post-run convergence --------------------------------------
    assert!(w.halted, "every job must reach a terminal state");
    assert_eq!(w.pending_rpc_count(), 0, "leaked matchtags after the storm");
    let f = f_slot.borrow().expect("probe job was submitted");
    assert_eq!(w.jobs.get(f).unwrap().state, JobState::Completed);
    assert_eq!(w.jobs.get(a).unwrap().state, JobState::Failed);

    // The overlay healed to fresh k-ary shape (re-balance pass + storm
    // end), and every rank is back.
    let live = w.tbon.attached_ranks().len() as u32;
    assert_eq!(live, NODES, "all ranks re-attached after the storm");
    let ideal = Tbon::ideal_depth(live, w.tbon.fanout());
    assert!(
        w.tbon.max_depth() <= ideal,
        "post-storm depth {} exceeds fresh k-ary depth {ideal}",
        w.tbon.max_depth()
    );
    assert!(w.tbon.is_balanced());

    let trace: String = w.trace.entries().iter().map(|e| format!("{e}\n")).collect();
    // The scripted prefix is deterministic regardless of seed: the batch
    // kill re-parents orphans, and the root death elects rank 1.
    assert!(trace.contains("re-parented 2 orphan(s) of rank1 under rank0"));
    assert!(trace.contains("re-parented 2 orphan(s) of rank2 under rank0"));
    assert!(trace.contains("root failover: rank0 -> rank1"));

    let inner = degraded.borrow().clone().expect("degraded query issued");
    let stats = inner
        .subtree_stats()
        .expect("mid-storm reduction completed")
        .expect("reduction replied");
    assert!(
        !stats.all_complete,
        "two dead ranks must not fabricate a complete window"
    );
    assert!(stats.nodes <= 6, "dead ranks cannot contribute: {stats:?}");
    assert!(stats.samples > 0, "surviving ranks carried data");

    assert!(
        w.fault_drops() > 0,
        "the burst plan actually dropped traffic"
    );
    assert!(
        checks.get() >= 90,
        "invariant checker ran through the storm"
    );
    let limits = limits_slot.borrow().clone();
    assert!(!limits.is_empty());

    Outcome {
        trace,
        drops: w.fault_drops(),
        timeouts: w.rpc_timeout_count(),
        retries: w.rpc_retry_count(),
        epoch: w.tbon.epoch(),
        degraded: (stats.all_complete, stats.nodes, stats.samples),
        limits,
        invariant_checks: checks.get(),
    }
}

// --- CI seed matrix (keep in sync with ci.yml) ---------------------

#[test]
fn storm_seed_11_converges() {
    soak(11);
}

#[test]
fn storm_seed_29_converges() {
    soak(29);
}

#[test]
fn storm_seed_47_converges() {
    soak(47);
}

/// The acceptance scenario: the full storm — overlapping interior
/// failures, a failure during an active recovery, the root dying
/// mid-storm, burst faults — converges, and the same seed replays
/// byte-identically, trace and all. The trace is also pinned to a
/// committed golden, so an engine or overlay change that shifts event
/// ordering fails here even though both runs of the *new* code agree
/// with each other.
#[test]
fn acceptance_storm_replays_byte_identical() {
    let first = soak(64);
    let second = soak(64);
    assert_eq!(
        first.trace, second.trace,
        "same-seed storms must be byte-identical"
    );
    assert_eq!(first, second);
    common::check_golden(
        &first.trace,
        "tests/golden/chaos_soak_seed64.trace",
        include_str!("golden/chaos_soak_seed64.trace"),
    );
}

// --- 128-rank storms (via the shared experiments::chaos harness) ----

/// The scaled storm: a 128-rank instance through the same script with
/// proportionally sized failure batches, replayed for equality.
#[test]
fn storm_128_ranks_converges_and_replays() {
    use fluxpm::experiments::chaos::{storm, StormConfig};
    let cfg = StormConfig::new(128, 7);
    let first = storm(&cfg);
    assert!(first.invariant_checks >= 90);
    assert_eq!(first, storm(&cfg), "same-seed 128-rank storms must agree");
}

/// Network-realism acceptance: the 128-rank storm with congestion
/// layered on — per-link bandwidth squeezes (one sustained, one
/// Gilbert–Elliott-style flapping window riding the death ticks, one
/// mid-tree), 1 s push telemetry feeding every interior link, and the
/// link monitor routing subtrees around sustained congestion. The
/// harness itself asserts the acceptance invariants (the mid-congestion
/// reduction completes, exactly one re-parent for the sustained
/// pre-storm event, per-link re-parents bounded against epoch thrash);
/// this test pins the replay-equality and re-route guarantees at scale.
#[test]
fn congestion_storm_128_ranks_converges_and_replays() {
    use fluxpm::experiments::chaos::{storm, StormConfig};
    let cfg = StormConfig::congested(128, 7);
    let first = storm(&cfg);
    assert!(first.invariant_checks >= 90);
    assert!(
        first.congestion_reparents >= 1,
        "congestion avoidance engaged: {first:?}"
    );
    assert_eq!(first, storm(&cfg), "same-seed congestion storms must agree");
}

/// Long-horizon soak: ten minutes of simulated churn at 128 ranks.
/// Too slow for the CI fast matrix — run explicitly with
/// `cargo test -- --ignored` (nightly soak lane).
#[test]
#[ignore = "long-horizon soak; run with --ignored"]
fn storm_128_ranks_long_horizon_soak() {
    use fluxpm::experiments::chaos::{storm, StormConfig};
    let out = storm(&StormConfig::long(128, 21));
    assert!(out.invariant_checks >= 600, "checker ran through the soak");
    assert!(out.epoch > 0 && out.drops > 0);
}
