//! Scale smoke tests: the stack at cluster sizes well beyond the paper's
//! 8/16-node experiments, exercising the TBON depth, scheduler, monitor
//! fan-out, and manager reallocation paths together.

use fluxpm::experiments::{JobRequest, PowerSetup, Scenario};
use fluxpm::flux::{Engine, FluxEngine, JobSpec, World};
use fluxpm::hw::{MachineKind, Watts};
use fluxpm::manager::ManagerConfig;
use fluxpm::monitor::{MonitorConfig, MonitorQuery};
use fluxpm::workloads::{laghos, App, JitterModel};

/// 128 nodes, 24 jobs, both power modules loaded: everything completes,
/// the bound holds, and the tree query answers over a 7-level TBON.
#[test]
fn full_stack_at_128_nodes() {
    let bound = 128.0 * 1200.0;
    let mut scenario = Scenario::new(MachineKind::Lassen, 128)
        .with_label("scale-128")
        .with_monitor(MonitorConfig::default())
        .with_power(PowerSetup::Managed {
            static_node_cap: Some(1950.0),
            config: ManagerConfig::proportional(Watts(bound)),
        });
    let apps = ["LAMMPS", "GEMM", "Quicksilver", "Laghos"];
    for i in 0..24u64 {
        let app = apps[(i % 4) as usize];
        let nnodes = 4 + (i % 5) as u32 * 8; // 4..36 nodes
        scenario = scenario.with_job(
            JobRequest::new(app, nnodes)
                .with_work_seconds(40.0 + (i % 7) as f64 * 15.0)
                .submit_at(i as f64 * 5.0),
        );
    }
    let report = scenario.run();
    assert_eq!(report.jobs.len(), 24);
    assert!(
        report.cluster_max_w <= bound * 1.02,
        "bound holds at scale: {:.0} of {bound:.0}",
        report.cluster_max_w
    );
    // Nothing starved: every job ran and finished.
    for j in &report.jobs {
        assert!(j.runtime_s > 0.0, "{} ran", j.name);
    }
}

/// The in-tree stats reduction on a deep TBON returns the right node
/// count and plausible power for a wide job.
#[test]
fn tree_reduction_on_deep_tbon() {
    let mut world = World::new(MachineKind::Lassen, 96, 71);
    world.autostop_after = Some(1);
    let mut eng: FluxEngine = Engine::new();
    fluxpm::monitor::load(&mut world, &mut eng, MonitorConfig::default());
    world.install_executor(&mut eng);
    let app = App::with_jitter(laghos(), MachineKind::Lassen, 60, 9, JitterModel::none())
        .with_work_scale(5.0);
    let id = world.submit(&mut eng, JobSpec::new("Laghos", 60), Box::new(app));
    eng.run(&mut world);

    let mut eng2: FluxEngine = Engine::new();
    let query = MonitorQuery::job_stats_tree(id).send(&mut world, &mut eng2);
    eng2.run(&mut world);
    let stats = query.subtree_stats().unwrap().unwrap();
    assert_eq!(stats.nodes, 60);
    assert!(stats.all_complete);
    // Laghos nodes: ~490 W each.
    assert!(
        (stats.mean_w() - 490.0).abs() < 30.0,
        "mean {}",
        stats.mean_w()
    );
}
