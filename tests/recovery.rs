//! Recovery integration tests: the self-healing overlay end-to-end.
//!
//! Covers the full fail → aggregate(degraded) → recover →
//! aggregate(complete) cycle, byte-identical replay of that cycle, and
//! root-rank failover with the manager's budgets preserved across the
//! migration.

use fluxpm::flux::{Engine, FluxEngine, JobSpec, JobState, Rank, World};
use fluxpm::hw::{MachineKind, NodeId, Watts};
use fluxpm::monitor::{rpc_stats_to_csv, MonitorConfig, MonitorQuery};
use fluxpm::sim::{SimTime, Trace, TraceLevel};
use fluxpm::workloads::{laghos, App, JitterModel};
use std::cell::RefCell;
use std::rc::Rc;

/// The tentpole cycle on a 7-node binary tree: interior rank 1 dies
/// mid-reduction (degraded aggregation: only its own samples missing),
/// a post-hoc query while it is down is flagged incomplete, the node
/// rejoins via `recover_node`, and a fresh job afterwards aggregates
/// *complete* again — the rejoined agent's buffer covers the new job's
/// whole window. The entire cycle replays byte-for-byte from the seed.
#[test]
fn fail_recover_cycle_restores_complete_aggregation() {
    let fail_at = SimTime::from_micros(30_000_050);

    let run = || {
        let mut w = World::new(MachineKind::Lassen, 7, 11);
        w.trace = Trace::enabled(TraceLevel::Debug);
        w.autostop_after = Some(2);
        let mut eng: FluxEngine = Engine::new();
        fluxpm::monitor::load(&mut w, &mut eng, MonitorConfig::default());
        w.install_executor(&mut eng);
        let app = App::with_jitter(laghos(), MachineKind::Lassen, 7, 1, JitterModel::none())
            .with_work_seconds(100.0);
        let a = w.submit(&mut eng, JobSpec::new("Laghos", 7), Box::new(app));

        // Query mid-run; rank 1 dies 50 µs later with the reduction in
        // flight, so the root's deadline + re-fan path must heal it.
        let mid = Rc::new(RefCell::new(None));
        let mid2 = Rc::clone(&mid);
        eng.schedule(SimTime::from_secs(30), move |w: &mut World, eng| {
            let inner = MonitorQuery::job_stats_tree(a).send(w, eng);
            *mid2.borrow_mut() = Some(inner);
        });
        eng.schedule(fail_at, move |w: &mut World, eng| {
            w.fail_node(eng, NodeId(1));
        });

        // A second query while the rank is down and already detached:
        // no deadline needed, the dead target is simply unreachable.
        let down = Rc::new(RefCell::new(None));
        let down2 = Rc::clone(&down);
        eng.schedule(SimTime::from_secs(40), move |w: &mut World, eng| {
            let inner = MonitorQuery::job_stats_tree(a).send(w, eng);
            *down2.borrow_mut() = Some(inner);
        });

        // The node comes back at t = 60 s ...
        eng.schedule(SimTime::from_secs(60), move |w: &mut World, eng| {
            assert!(w.recover_node(eng, NodeId(1)), "node was down");
        });

        // ... and a fresh 7-node job at t = 70 s exercises the healed
        // overlay, rejoined leaf included.
        let b_slot = Rc::new(RefCell::new(None));
        let b2 = Rc::clone(&b_slot);
        eng.schedule(SimTime::from_secs(70), move |w: &mut World, eng| {
            let app = App::with_jitter(laghos(), MachineKind::Lassen, 7, 2, JitterModel::none())
                .with_work_seconds(20.0);
            let id = w.submit(eng, JobSpec::new("Laghos", 7), Box::new(app));
            *b2.borrow_mut() = Some(id);
        });
        eng.run(&mut w);

        let b = (*b_slot.borrow()).expect("job B was submitted");
        assert_eq!(w.jobs.get(b).unwrap().state, JobState::Completed);

        // Post-run: aggregate over job B's window.
        let mut eng2: FluxEngine = Engine::new();
        let query = MonitorQuery::job_stats_tree(b).send(&mut w, &mut eng2);
        eng2.run(&mut w);
        let complete = query.subtree_stats().unwrap().unwrap();

        let mid_inner = mid.borrow().clone().expect("mid query was issued");
        let mid_stats = mid_inner.subtree_stats().unwrap().unwrap();
        let down_inner = down.borrow().clone().expect("down query was issued");
        let down_stats = down_inner.subtree_stats().unwrap().unwrap();
        let trace: String = w.trace.entries().iter().map(|e| format!("{e}\n")).collect();
        (w, mid_stats, down_stats, complete, trace)
    };

    let (w, mid_stats, down_stats, complete, trace) = run();

    // Degraded phase 1 (mid-reduction death): the deadline fired, the
    // orphans were re-fanned, every live rank contributed.
    assert!(!mid_stats.all_complete, "dead rank must flag incomplete");
    assert_eq!(mid_stats.nodes, 6, "re-fan reaches all live ranks");
    assert!(mid_stats.samples > 0);

    // Degraded phase 2 (query while down): the detached target is
    // unreachable and flagged, not silently dropped.
    assert!(!down_stats.all_complete, "down rank must flag incomplete");
    assert_eq!(down_stats.nodes, 6);

    // Recovered phase: the rejoined leaf covers job B's whole window,
    // so the reduction is complete across all 7 ranks again.
    assert!(
        complete.all_complete,
        "post-recovery reduction must be complete: {complete:?}"
    );
    assert_eq!(complete.nodes, 7, "rejoined rank contributes");
    assert!(complete.samples > 0);

    // The overlay healed in both directions.
    assert!(trace.contains("re-parented 2 orphan(s) of rank1 under rank0"));
    assert!(trace.contains("rank1 rejoined under rank0"));
    assert!(w.broker_up(Rank(1)));

    // The incident is visible in the per-topic RPC health CSV.
    let csv = rpc_stats_to_csv(&w);
    let row = csv
        .lines()
        .find(|l| l.starts_with("power-monitor.subtree-stats,"))
        .expect("subtree-stats incident row in rpc stats CSV");
    let timeouts: u64 = row.split(',').nth(1).unwrap().parse().unwrap();
    assert!(timeouts >= 1, "the mid-reduction deadline was counted");

    // Determinism: the whole fail → recover cycle replays byte-for-byte.
    let (_, mid_replay, down_replay, complete_replay, trace_replay) = run();
    assert_eq!(trace, trace_replay, "same-seed runs must be byte-identical");
    assert_eq!(mid_stats, mid_replay);
    assert_eq!(down_stats, down_replay);
    assert_eq!(complete, complete_replay);
}

/// Killing rank 0 promotes the lowest live rank to root, migrates the
/// monitor root agent and both root-side managers with their state, and
/// the surviving job keeps being capped and monitored: budgets are
/// preserved, limits are re-pushed past the job manager's dedup mirror,
/// and a post-failover stats fetch through the new root succeeds.
#[test]
fn root_failure_promotes_successor_and_preserves_budgets() {
    let mut w = World::new(MachineKind::Lassen, 4, 7);
    w.trace = Trace::enabled(TraceLevel::Info);
    w.autostop_after = Some(2);
    let mut eng: FluxEngine = Engine::new();

    // Load the manager stack by hand so the test holds handles to the
    // root services and can watch their state travel.
    let cfg = fluxpm::manager::ManagerConfig::proportional(Watts(6000.0));
    let cluster = fluxpm::manager::ClusterLevelManager::shared(cfg.clone());
    let jobm = fluxpm::manager::JobLevelManager::shared();
    for rank in w.tbon.ranks().collect::<Vec<_>>() {
        let m = fluxpm::manager::NodeLevelManager::shared_with_target(
            cfg.policy,
            cfg.fpp.clone(),
            cfg.fpp_target,
        );
        w.load_module(&mut eng, rank, m);
    }
    w.load_module(&mut eng, Rank(0), jobm.clone());
    w.load_module(&mut eng, Rank(0), cluster.clone());
    fluxpm::monitor::load(&mut w, &mut eng, MonitorConfig::default());
    w.install_executor(&mut eng);

    // First-fit allocation: job A pins node 0 (the root), job B runs on
    // nodes 1-2 and survives the failover.
    let app_a = App::with_jitter(laghos(), MachineKind::Lassen, 1, 1, JitterModel::none())
        .with_work_seconds(100.0);
    let a = w.submit(&mut eng, JobSpec::new("Laghos", 1), Box::new(app_a));
    let app_b = App::with_jitter(laghos(), MachineKind::Lassen, 2, 2, JitterModel::none())
        .with_work_seconds(80.0);
    let b = w.submit(&mut eng, JobSpec::new("Laghos", 2), Box::new(app_b));

    eng.schedule(SimTime::from_secs(30), move |w: &mut World, eng| {
        w.fail_node(eng, NodeId(0));
    });

    // Right after the failover: the allocator migrated with the cluster
    // manager, so job B's budget must still be there.
    let limits_after = Rc::new(RefCell::new(Vec::new()));
    let la = Rc::clone(&limits_after);
    let cl = Rc::clone(&cluster);
    eng.schedule(SimTime::from_secs(31), move |_w: &mut World, _eng| {
        *la.borrow_mut() = cl.borrow().job_limits();
    });
    eng.run(&mut w);

    // The root role moved to the lowest live rank.
    assert_eq!(w.root(), Rank(1), "deterministic successor election");
    assert_eq!(w.jobs.get(a).unwrap().state, JobState::Failed);
    assert_eq!(w.jobs.get(b).unwrap().state, JobState::Completed);

    // Budgets survived the migration: job B still allocated, job A
    // reclaimed by the exception event.
    let limits = limits_after.borrow().clone();
    assert_eq!(limits.len(), 1, "exactly job B budgeted: {limits:?}");
    assert_eq!(limits[0].0, b);
    assert!(limits[0].1.get() > 0.0);

    // Cap enforcement continued: the re-push crossed the job manager's
    // cleared mirror and fanned out to job B's node managers.
    assert_eq!(jobm.borrow().job_limit(b), Some(limits[0].1));
    assert!(jobm.borrow().node_updates() >= 4, "initial + re-push fans");

    // All three root services migrated, and the managers re-pushed.
    let trace: String = w.trace.entries().iter().map(|e| format!("{e}\n")).collect();
    assert!(trace.contains("migrated power-manager-cluster to rank1"));
    assert!(trace.contains("migrated power-manager-job to rank1"));
    assert!(trace.contains("migrated power-monitor-root-agent to rank1"));
    assert!(trace.contains("cluster manager migrated to rank1"));
    assert!(trace.contains("job manager migrated to rank1"));

    // Monitoring still works through the new root.
    let mut eng2: FluxEngine = Engine::new();
    let query = MonitorQuery::job_stats(b).send(&mut w, &mut eng2);
    eng2.run(&mut w);
    let reply = query.job_stats().unwrap().unwrap();
    assert_eq!(reply.nodes.len(), 2, "both of job B's nodes answered");
}
