//! TBON-distributed telemetry fan-out, end to end — the relay tentpole.
//!
//! Every broker hosts a `TelemetryRelay`: clients subscribe, poll, and
//! unsubscribe against the rank they attach to (`MonitorQuery::at`),
//! filters aggregate up each tree edge, and the root publishes each
//! delta once per *interested child edge* — O(fanout), not
//! O(subscribers). These tests drive the full in-sim lifecycle at leaf
//! ranks, check the leaf stream is identical to the root-attached
//! stream (the PR 7 hub semantics, preserved through the tree), watch
//! filter aggregation narrow the root's egress, and exercise the two
//! failure modes the design calls out: root failover (subscriptions at
//! surviving relays resume, gap-checked, duplicate-free) and subscriber
//! broker death (fresh relay, re-subscribe re-seeds from the latest
//! snapshot).

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;

use fluxpm::flux::{Engine, FluxEngine, JobSpec, Rank, World};
use fluxpm::hw::{MachineKind, NodeId};
use fluxpm::monitor::{
    DeltaBatch, MonitorConfig, MonitorQuery, QueryHandle, RootAgent, SubscriptionFilter,
    TelemetryDelta, RELAY, ROOT_AGENT,
};
use fluxpm::sim::{SimDuration, SimTime};
use fluxpm::workloads::{laghos, App, JitterModel};

/// A 4-node world (TBON: 0 -> {1, 2}, 1 -> {3}) with sample pushes
/// every 2 s and one long job, so telemetry flows the whole window.
fn pushing_world(config: MonitorConfig) -> (World, FluxEngine) {
    let mut w = World::new(MachineKind::Lassen, 4, 37);
    let mut eng: FluxEngine = Engine::new();
    fluxpm::monitor::load(&mut w, &mut eng, config);
    w.install_executor(&mut eng);
    w.submit(
        &mut eng,
        JobSpec::new("Laghos", 4),
        Box::new(
            App::with_jitter(laghos(), MachineKind::Lassen, 4, 9, JitterModel::none())
                .with_work_seconds(500.0),
        ),
    );
    (w, eng)
}

type Slot<T> = Rc<RefCell<Option<T>>>;

fn slot<T>() -> Slot<T> {
    Rc::new(RefCell::new(None))
}

/// Key a delta by everything a consumer can observe, so two streams can
/// be compared for byte-level equality.
fn delta_key(d: &TelemetryDelta) -> (u64, u32, u64, u64, Option<u64>) {
    (
        d.seq,
        d.node,
        d.timestamp_us,
        d.node_w.to_bits(),
        d.job.map(|j| j.0),
    )
}

/// Subscribe at `rank` at `at` seconds, stashing the query handle.
fn subscribe_at(eng: &mut FluxEngine, rank: Rank, at: u64, out: &Slot<QueryHandle>) {
    let out = Rc::clone(out);
    eng.schedule(SimTime::from_secs(at), move |w: &mut World, eng| {
        let q = MonitorQuery::subscribe(SubscriptionFilter::all())
            .at(rank)
            .send(w, eng);
        *out.borrow_mut() = Some(q);
    });
}

/// Poll `sub` at `rank` at `at` seconds and append the drained deltas
/// to `into` half a second later.
fn poll_into(
    eng: &mut FluxEngine,
    rank: Rank,
    sub: &Slot<QueryHandle>,
    at_us: u64,
    into: &Rc<RefCell<Vec<TelemetryDelta>>>,
) {
    let (sub, into) = (Rc::clone(sub), Rc::clone(into));
    eng.schedule(SimTime::from_micros(at_us), move |w: &mut World, eng| {
        let id = sub
            .borrow()
            .as_ref()
            .expect("subscribe sent")
            .subscription()
            .expect("subscribe answered")
            .expect("subscribe ok");
        let q = MonitorQuery::poll(id, 4096).at(rank).send(w, eng);
        let into = Rc::clone(&into);
        eng.schedule(
            SimTime::from_micros(at_us + 500_000),
            move |_w: &mut World, _| {
                let batch = q.deltas().expect("poll answered").expect("poll ok");
                into.borrow_mut()
                    .extend(batch.deltas.iter().map(|d| (**d).clone()));
            },
        );
    });
}

/// Borrow the root agent on `rank` and run `f` against it.
fn with_root_agent<R>(w: &mut World, rank: Rank, f: impl FnOnce(&RootAgent) -> R) -> R {
    let module = w.brokers[rank.0 as usize]
        .module(ROOT_AGENT)
        .expect("root agent loaded");
    let mut guard = module.borrow_mut();
    let agent = guard
        .as_any_mut()
        .and_then(|a| a.downcast_mut::<RootAgent>())
        .expect("concrete root agent");
    f(agent)
}

/// The full lifecycle served entirely by a *leaf* relay: subscribe,
/// ordered delivery, unsubscribe, dead-id poll, snapshot re-seed — the
/// same observable contract the root-attached path has always had.
#[test]
fn leaf_subscriber_lifecycle_through_relay() {
    let (mut w, mut eng) =
        pushing_world(MonitorConfig::default().with_push_interval(SimDuration::from_secs(2)));
    let leaf = Rank(3);

    let sub_q: Slot<QueryHandle> = slot();
    subscribe_at(&mut eng, leaf, 5, &sub_q);

    // An invalid filter is rejected with a typed error at the serving
    // relay, before anything climbs the tree.
    let bad_sub: Slot<QueryHandle> = slot();
    {
        let out = Rc::clone(&bad_sub);
        eng.schedule(SimTime::from_secs(5), move |w: &mut World, eng| {
            let q = MonitorQuery::subscribe(SubscriptionFilter::all().with_nodes(vec![]))
                .at(leaf)
                .send(w, eng);
            *out.borrow_mut() = Some(q);
        });
    }

    let streamed = Rc::new(RefCell::new(Vec::new()));
    poll_into(&mut eng, leaf, &sub_q, 15_000_000, &streamed);

    // t=20: unsubscribe at the leaf; t=21: the dead id errors there.
    let unsub: Slot<QueryHandle> = slot();
    let dead_poll: Slot<Result<DeltaBatch, String>> = slot();
    {
        let (sub, out) = (Rc::clone(&sub_q), Rc::clone(&unsub));
        eng.schedule(SimTime::from_secs(20), move |w: &mut World, eng| {
            let id = sub
                .borrow()
                .as_ref()
                .unwrap()
                .subscription()
                .unwrap()
                .unwrap();
            *out.borrow_mut() = Some(MonitorQuery::unsubscribe(id).at(leaf).send(w, eng));
        });
        let (sub, out) = (Rc::clone(&sub_q), Rc::clone(&dead_poll));
        eng.schedule(SimTime::from_secs(21), move |w: &mut World, eng| {
            let id = sub
                .borrow()
                .as_ref()
                .unwrap()
                .subscription()
                .unwrap()
                .unwrap();
            let q = MonitorQuery::poll(id, 16).at(leaf).send(w, eng);
            let out = Rc::clone(&out);
            eng.schedule(
                SimTime::from_micros(21_500_000),
                move |_w: &mut World, _| {
                    *out.borrow_mut() = q.deltas();
                },
            );
        });
    }

    // t=25.1: re-subscribe at the leaf. The seed arrives from the
    // root's latest-per-node snapshot, so a poll before the next push
    // round already holds one delta per node.
    let reseed_poll: Slot<DeltaBatch> = slot();
    {
        let out = Rc::clone(&reseed_poll);
        eng.schedule(
            SimTime::from_micros(25_100_000),
            move |w: &mut World, eng| {
                let q = MonitorQuery::subscribe(SubscriptionFilter::all())
                    .at(leaf)
                    .send(w, eng);
                let out = Rc::clone(&out);
                eng.schedule(
                    SimTime::from_micros(25_500_000),
                    move |w: &mut World, eng| {
                        let sub = q.subscription().unwrap().unwrap();
                        let q = MonitorQuery::poll(sub, 16).at(leaf).send(w, eng);
                        let out = Rc::clone(&out);
                        eng.schedule(
                            SimTime::from_micros(25_900_000),
                            move |_w: &mut World, _| {
                                *out.borrow_mut() =
                                    Some(q.deltas().expect("poll answered").expect("poll ok"));
                            },
                        );
                    },
                );
            },
        );
    }

    eng.run_until(&mut w, SimTime::from_secs(30));

    let err = bad_sub
        .borrow()
        .as_ref()
        .unwrap()
        .subscription()
        .expect("bad subscribe answered")
        .expect_err("empty node set rejected");
    assert!(err.contains("invalid filter"), "got: {err}");

    let deltas = streamed.borrow().clone();
    assert!(!deltas.is_empty(), "deltas reached the leaf by t=15");
    assert!(
        deltas.windows(2).all(|p| p[0].seq < p[1].seq),
        "publication order survives the tree"
    );
    let nodes: BTreeSet<u32> = deltas.iter().map(|d| d.node).collect();
    assert_eq!(nodes.len(), 4, "every node's pushes reached the leaf");
    assert!(
        deltas.iter().all(|d| d.job.is_some()),
        "job attribution (assigned at the root) survives the tree"
    );

    assert_eq!(
        unsub.borrow().as_ref().unwrap().unsubscribed(),
        Some(Ok(true)),
        "unsubscribe found its subscription at the leaf"
    );
    let err = dead_poll
        .borrow()
        .clone()
        .expect("dead poll resolved")
        .expect_err("polling an unsubscribed id errors");
    assert!(err.contains("unknown subscriber"), "got: {err}");

    let batch = reseed_poll.borrow().clone().expect("re-seed resolved");
    let nodes: Vec<u32> = batch.deltas.iter().map(|d| d.node).collect();
    let unique: BTreeSet<u32> = nodes.iter().copied().collect();
    assert_eq!(
        (nodes.len(), unique.len()),
        (4, 4),
        "snapshot seeds exactly one latest delta per node: {nodes:?}"
    );
}

/// The equivalence acceptance: for the same filter over the same
/// window, a subscriber at a leaf relay sees *exactly* the stream a
/// root-attached subscriber sees — same deltas, same order, same
/// sequence numbers, same payload bits. The tree only changes who does
/// the fan-out work, never what a consumer observes.
#[test]
fn leaf_stream_is_byte_identical_to_root_stream() {
    let (mut w, mut eng) =
        pushing_world(MonitorConfig::default().with_push_interval(SimDuration::from_secs(2)));

    let at_root: Slot<QueryHandle> = slot();
    let at_leaf: Slot<QueryHandle> = slot();
    subscribe_at(&mut eng, Rank(0), 5, &at_root);
    subscribe_at(&mut eng, Rank(3), 5, &at_leaf);

    let root_stream = Rc::new(RefCell::new(Vec::new()));
    let leaf_stream = Rc::new(RefCell::new(Vec::new()));
    // Repeated interleaved drains: equivalence must hold poll by poll,
    // not just in the final accumulation.
    for at_s in [9u64, 13, 17, 21, 25] {
        poll_into(&mut eng, Rank(0), &at_root, at_s * 1_000_000, &root_stream);
        poll_into(&mut eng, Rank(3), &at_leaf, at_s * 1_000_000, &leaf_stream);
    }

    eng.run_until(&mut w, SimTime::from_secs(28));

    let root: Vec<_> = root_stream.borrow().iter().map(delta_key).collect();
    let leaf: Vec<_> = leaf_stream.borrow().iter().map(delta_key).collect();
    assert!(root.len() >= 30, "a real stream flowed: {}", root.len());
    assert_eq!(root, leaf, "leaf stream diverged from root stream");
}

/// Filter aggregation narrows what each edge carries: a single-node
/// subscription at a leaf widens only its own path to the root, the
/// sibling subtree's edge stays silent, and the root's egress is
/// per-edge — O(fanout) — not per-subscriber.
#[test]
fn filter_aggregation_narrows_root_egress() {
    let (mut w, mut eng) =
        pushing_world(MonitorConfig::default().with_push_interval(SimDuration::from_secs(2)));
    let leaf = Rank(3);

    // Two leaf subscribers with the same node-3-only filter: fan-out
    // cost at the root must not grow with the second subscriber.
    for _ in 0..2 {
        eng.schedule(SimTime::from_secs(5), move |w: &mut World, eng| {
            let _ = MonitorQuery::subscribe(SubscriptionFilter::all().with_nodes(vec![3]))
                .at(leaf)
                .send(w, eng);
        });
    }
    let streamed = Rc::new(RefCell::new(Vec::new()));
    let sub_q: Slot<QueryHandle> = slot();
    subscribe_at(&mut eng, leaf, 5, &sub_q);
    // This third subscriber is the firehose control at the same leaf.
    poll_into(&mut eng, leaf, &sub_q, 20_000_000, &streamed);

    eng.run_until(&mut w, SimTime::from_secs(24));

    with_root_agent(&mut w, Rank(0), |agent| {
        let children: Vec<(u32, bool)> = agent
            .plane()
            .children()
            .map(|(c, a)| (c, a.is_all()))
            .collect();
        // Only the subtree containing rank 3 asked for anything; the
        // firehose widened that one edge to match-all. Rank 2's edge
        // never materialized.
        assert_eq!(children, vec![(1, true)], "{children:?}");
        // Egress is per-edge: one wire message per push round on one
        // edge, regardless of three subscribers sitting below it.
        let msgs = agent.plane().egress_msgs();
        let offered = agent.plane().offered();
        assert!(msgs > 0 && offered > 0);
        assert!(
            msgs <= offered,
            "one edge interested: at most one egress message per offered delta \
             (msgs={msgs}, offered={offered})"
        );
    });
    let deltas = streamed.borrow().clone();
    let nodes: BTreeSet<u32> = deltas.iter().map(|d| d.node).collect();
    assert_eq!(nodes.len(), 4, "the firehose still sees every node");
}

/// Root failover: the authoritative hub (sequence counter, latest
/// snapshots) migrates to the promoted successor, the surviving leaf
/// relay re-advertises its aggregate to the new root, and the leaf
/// subscriber's stream resumes — strictly ordered, duplicate-free —
/// without re-subscribing.
#[test]
fn leaf_subscription_survives_root_failover() {
    let (mut w, mut eng) =
        pushing_world(MonitorConfig::default().with_push_interval(SimDuration::from_secs(2)));
    let leaf = Rank(3);

    let sub_q: Slot<QueryHandle> = slot();
    subscribe_at(&mut eng, leaf, 5, &sub_q);

    let before = Rc::new(RefCell::new(Vec::new()));
    let after = Rc::new(RefCell::new(Vec::new()));
    poll_into(&mut eng, leaf, &sub_q, 15_000_000, &before);

    eng.schedule(SimTime::from_secs(20), |w: &mut World, eng| {
        w.fail_node(eng, NodeId(0));
    });

    // Well after the failover: pushes flow to the promoted root
    // (rank 1), which distributes down the re-advertised edge to the
    // leaf relay. Same subscription, no client-side recovery.
    poll_into(&mut eng, leaf, &sub_q, 32_000_000, &after);

    eng.run_until(&mut w, SimTime::from_secs(35));
    assert_eq!(w.root(), Rank(1), "deterministic successor election");

    let before = before.borrow().clone();
    let after = after.borrow().clone();
    assert!(!before.is_empty(), "stream flowed before the failover");
    assert!(
        after.iter().any(|d| d.timestamp_us > 21_000_000),
        "stream resumed with post-failover deltas: {} deltas",
        after.len()
    );
    let all: Vec<u64> = before.iter().chain(after.iter()).map(|d| d.seq).collect();
    let unique: BTreeSet<u64> = all.iter().copied().collect();
    assert_eq!(unique.len(), all.len(), "no duplicates across the failover");
    assert!(
        all.windows(2).all(|p| p[0] < p[1]),
        "sequence stayed strictly increasing: the hub's counter migrated"
    );
    // Node 0 died with the root; the survivors keep reporting.
    let nodes: BTreeSet<u32> = after.iter().map(|d| d.node).collect();
    assert!(
        nodes.contains(&1) && nodes.contains(&2) && nodes.contains(&3),
        "survivors keep flowing: {nodes:?}"
    );
}

/// Subscriber-broker death: the relay (and its queues) die with the
/// broker. After recovery the rank hosts a fresh relay — the old id is
/// unknown there — and a re-subscribe at the recovered rank re-seeds
/// from the root's latest snapshot, exactly like any slow-consumer
/// eviction.
#[test]
fn broker_death_drops_local_subscribers_and_resubscribe_reseeds() {
    let (mut w, mut eng) =
        pushing_world(MonitorConfig::default().with_push_interval(SimDuration::from_secs(2)));
    let leaf = Rank(3);

    let sub_q: Slot<QueryHandle> = slot();
    subscribe_at(&mut eng, leaf, 5, &sub_q);
    let streamed = Rc::new(RefCell::new(Vec::new()));
    poll_into(&mut eng, leaf, &sub_q, 15_000_000, &streamed);

    eng.schedule(SimTime::from_secs(18), |w: &mut World, eng| {
        w.fail_node(eng, NodeId(3));
    });
    eng.schedule(SimTime::from_secs(22), |w: &mut World, eng| {
        assert!(w.recover_node(eng, NodeId(3)));
    });

    // t=26: the old id is unknown on the rebuilt relay.
    let dead_poll: Slot<Result<DeltaBatch, String>> = slot();
    {
        let (sub, out) = (Rc::clone(&sub_q), Rc::clone(&dead_poll));
        eng.schedule(SimTime::from_secs(26), move |w: &mut World, eng| {
            let id = sub
                .borrow()
                .as_ref()
                .unwrap()
                .subscription()
                .unwrap()
                .unwrap();
            let q = MonitorQuery::poll(id, 16).at(leaf).send(w, eng);
            let out = Rc::clone(&out);
            eng.schedule(
                SimTime::from_micros(26_500_000),
                move |_w: &mut World, _| {
                    *out.borrow_mut() = q.deltas();
                },
            );
        });
    }

    // t=27.1: re-subscribe at the recovered rank; the seed holds the
    // latest delta for every live node before the next push round.
    let reseed_poll: Slot<DeltaBatch> = slot();
    {
        let out = Rc::clone(&reseed_poll);
        eng.schedule(
            SimTime::from_micros(27_100_000),
            move |w: &mut World, eng| {
                let q = MonitorQuery::subscribe(SubscriptionFilter::all())
                    .at(leaf)
                    .send(w, eng);
                let out = Rc::clone(&out);
                eng.schedule(
                    SimTime::from_micros(27_500_000),
                    move |w: &mut World, eng| {
                        let sub = q.subscription().unwrap().unwrap();
                        let q = MonitorQuery::poll(sub, 16).at(leaf).send(w, eng);
                        let out = Rc::clone(&out);
                        eng.schedule(
                            SimTime::from_micros(27_900_000),
                            move |_w: &mut World, _| {
                                *out.borrow_mut() =
                                    Some(q.deltas().expect("poll answered").expect("poll ok"));
                            },
                        );
                    },
                );
            },
        );
    }

    eng.run_until(&mut w, SimTime::from_secs(30));

    assert!(!streamed.borrow().is_empty(), "stream flowed before death");
    let err = dead_poll
        .borrow()
        .clone()
        .expect("dead poll resolved")
        .expect_err("old id unknown on the rebuilt relay");
    assert!(err.contains("unknown subscriber"), "got: {err}");

    let batch = reseed_poll.borrow().clone().expect("re-seed resolved");
    let nodes: BTreeSet<u32> = batch.deltas.iter().map(|d| d.node).collect();
    assert_eq!(
        nodes.len(),
        4,
        "snapshot survived at the root and re-seeded the fresh relay: {nodes:?}"
    );
    // The relay module itself was rebuilt by the registered factory.
    assert!(
        w.brokers[leaf.0 as usize].module(RELAY).is_some(),
        "recovered broker hosts a fresh relay"
    );
}
