//! Shared helpers for the integration-test golden files.

/// Compare `actual` against a committed golden file, or regenerate it
/// when `GOLDEN_REGEN` is set in the environment.
///
/// `rel` is the golden's path relative to the repository root (used for
/// regeneration and error messages); `golden` is its compile-time
/// content via `include_str!`. On mismatch the panic names the first
/// diverging line instead of dumping both files.
pub fn check_golden(actual: &str, rel: &str, golden: &str) {
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(rel);
        std::fs::write(&path, actual).unwrap_or_else(|e| panic!("regen {rel}: {e}"));
        eprintln!("regenerated {rel} ({} bytes)", actual.len());
        return;
    }
    if actual == golden {
        return;
    }
    for (line_no, (a, g)) in actual.lines().zip(golden.lines()).enumerate() {
        assert!(
            a == g,
            "golden {rel} diverged at line {}:\n  golden: {g}\n  actual: {a}\n\
             (intentional change? regenerate with GOLDEN_REGEN=1)",
            line_no + 1
        );
    }
    panic!(
        "golden {rel} length differs: actual {} lines vs golden {} \
         (intentional change? regenerate with GOLDEN_REGEN=1)",
        actual.lines().count(),
        golden.lines().count()
    );
}
