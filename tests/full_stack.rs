//! Cross-crate integration: monitor + manager + scheduler + workloads
//! running together on one simulated instance.

use fluxpm::experiments::{JobRequest, PowerSetup, Scenario};
use fluxpm::flux::{Engine, FluxEngine, JobSpec, World};
use fluxpm::hw::{MachineKind, Watts};
use fluxpm::manager::ManagerConfig;
use fluxpm::monitor::{MonitorConfig, MonitorQuery};
use fluxpm::workloads::{laghos, App, JitterModel};

/// Monitor and manager coexist: telemetry reflects the caps the manager
/// sets, and both module stacks share the TBON without interfering.
#[test]
fn monitor_and_manager_together() {
    let mut world = World::new(MachineKind::Lassen, 8, 5);
    world.autostop_after = Some(2);
    let mut eng: FluxEngine = Engine::new();
    for n in &mut world.nodes {
        n.set_node_cap(Watts(1950.0)).unwrap();
    }
    fluxpm::manager::load(
        &mut world,
        &mut eng,
        ManagerConfig::proportional(Watts(9600.0)),
    );
    fluxpm::monitor::load(&mut world, &mut eng, MonitorConfig::default());
    world.install_executor(&mut eng);

    let gemm = App::with_jitter(
        fluxpm::workloads::gemm(),
        MachineKind::Lassen,
        6,
        1,
        JitterModel::none(),
    )
    .with_work_scale(2.0);
    let qs = App::with_jitter(
        fluxpm::workloads::quicksilver(),
        MachineKind::Lassen,
        2,
        2,
        JitterModel::none(),
    )
    .with_work_seconds(348.0);
    let gid = world.submit(&mut eng, JobSpec::new("GEMM", 6), Box::new(gemm));
    world.submit(&mut eng, JobSpec::new("Quicksilver", 2), Box::new(qs));
    eng.run(&mut world);

    // Fetch GEMM's telemetry through the monitor.
    let mut eng2: FluxEngine = Engine::new();
    let query = MonitorQuery::job_data(gid).send(&mut world, &mut eng2);
    eng2.run(&mut world);
    let reply = query.job_data().unwrap().unwrap();
    assert_eq!(reply.nodes.len(), 6);
    assert!(reply.all_complete());

    // While sharing, GEMM nodes sit near the 1200 W share (CPU 200 +
    // 4x200 GPU + mem 80 + other 40 = 1120); after reclaim they rise.
    let early: Vec<f64> = reply.nodes[0]
        .records
        .iter()
        .filter(|r| (60_000_000..300_000_000).contains(&r.timestamp_us()))
        .map(|r| r.sample.node_power_estimate())
        .collect();
    let mean = early.iter().sum::<f64>() / early.len() as f64;
    assert!(
        (mean - 1120.0).abs() < 60.0,
        "managed GEMM node during sharing: {mean} W"
    );
}

/// The global bound is never violated across a randomized queue, under
/// both managed policies, as observed by sampled telemetry.
#[test]
fn power_bound_invariant_under_random_queue() {
    use fluxpm::sim::Xoshiro256pp;
    let apps = ["LAMMPS", "GEMM", "Quicksilver", "Laghos"];
    for policy_is_fpp in [false, true] {
        let mut rng = Xoshiro256pp::seed_from_u64(0xBEEF);
        let bound = 12.0 * 1200.0;
        let config = if policy_is_fpp {
            ManagerConfig::fpp(Watts(bound))
        } else {
            ManagerConfig::proportional(Watts(bound))
        };
        let mut scenario = Scenario::new(MachineKind::Lassen, 12)
            .with_label(if policy_is_fpp { "fpp" } else { "prop" })
            .with_power(PowerSetup::Managed {
                static_node_cap: Some(1950.0),
                config,
            });
        for i in 0..8 {
            let app = apps[rng.below(4) as usize];
            let nnodes = rng.range_inclusive(1, 6) as u32;
            scenario = scenario.with_job(
                JobRequest::new(app, nnodes)
                    .with_work_seconds(rng.uniform(60.0, 200.0))
                    .submit_at(i as f64 * 15.0),
            );
        }
        let report = scenario.run();
        assert_eq!(report.jobs.len(), 8);
        assert!(
            report.cluster_max_w <= bound * 1.02,
            "bound violated under {}: {:.0} W of {bound:.0}",
            report.label,
            report.cluster_max_w
        );
    }
}

/// Telemetry faithfully reflects injected demand end-to-end (sensor noise
/// aside): a Laghos node reads ~490 W through the whole stack.
#[test]
fn telemetry_matches_injected_demand() {
    let mut world = World::new(MachineKind::Lassen, 2, 9);
    world.autostop_after = Some(1);
    let mut eng: FluxEngine = Engine::new();
    fluxpm::monitor::load(&mut world, &mut eng, MonitorConfig::default());
    world.install_executor(&mut eng);
    let app = App::with_jitter(laghos(), MachineKind::Lassen, 1, 3, JitterModel::none())
        .with_work_scale(8.0);
    let id = world.submit(&mut eng, JobSpec::new("Laghos", 1), Box::new(app));
    eng.run(&mut world);

    let mut eng2: FluxEngine = Engine::new();
    let query = MonitorQuery::job_data(id).send(&mut world, &mut eng2);
    eng2.run(&mut world);
    let reply = query.job_data().unwrap().unwrap();
    // Laghos: 2*85 + 4*55 + 60 + 40 = 490 W nominal (CPU sine ±).
    let avg = reply.average_node_power();
    assert!((avg - 490.0).abs() < 25.0, "telemetry avg {avg} W");
    // The CPU sine phase must be visible in the samples.
    let cpu: Vec<f64> = reply.nodes[0]
        .records
        .iter()
        .map(|r| r.sample.cpu_total())
        .collect();
    let min = cpu.iter().copied().fold(f64::INFINITY, f64::min);
    let max = cpu.iter().copied().fold(0.0f64, f64::max);
    assert!(
        max - min > 20.0,
        "Laghos minor phases visible: {min}..{max}"
    );
}

/// FCFS scheduling holds while both power-module stacks are loaded.
#[test]
fn scheduling_unaffected_by_power_modules() {
    let run = |with_modules: bool| {
        let mut world = World::new(MachineKind::Lassen, 4, 13);
        world.autostop_after = Some(3);
        let mut eng: FluxEngine = Engine::new();
        if with_modules {
            fluxpm::manager::load(&mut world, &mut eng, ManagerConfig::unconstrained());
            fluxpm::monitor::load(&mut world, &mut eng, MonitorConfig::default());
        }
        world.install_executor(&mut eng);
        for (i, n) in [3u32, 2, 2].into_iter().enumerate() {
            let app = App::with_jitter(
                laghos(),
                MachineKind::Lassen,
                n,
                i as u64,
                JitterModel::none(),
            );
            world.submit(&mut eng, JobSpec::new(format!("j{i}"), n), Box::new(app));
        }
        eng.run(&mut world);
        world
            .jobs
            .all()
            .iter()
            .map(|j| j.started_at.unwrap().as_secs_f64().round() as i64)
            .collect::<Vec<_>>()
    };
    let without = run(false);
    let with = run(true);
    assert_eq!(
        without, with,
        "module load must not perturb scheduling order"
    );
}

/// The light-weight stats query agrees with the full-record query.
#[test]
fn stats_query_agrees_with_full_records() {
    let mut world = World::new(MachineKind::Lassen, 4, 31);
    world.autostop_after = Some(1);
    let mut eng: FluxEngine = Engine::new();
    fluxpm::monitor::load(&mut world, &mut eng, MonitorConfig::default());
    world.install_executor(&mut eng);
    let app = App::with_jitter(laghos(), MachineKind::Lassen, 2, 9, JitterModel::none())
        .with_work_scale(6.0);
    let id = world.submit(&mut eng, JobSpec::new("Laghos", 2), Box::new(app));
    eng.run(&mut world);

    let mut eng2: FluxEngine = Engine::new();
    let data_query = MonitorQuery::job_data(id).send(&mut world, &mut eng2);
    let stats_query = MonitorQuery::job_stats(id).send(&mut world, &mut eng2);
    eng2.run(&mut world);
    let data = data_query.job_data().unwrap().unwrap();
    let stats = stats_query.job_stats().unwrap().unwrap();

    assert_eq!(stats.nodes.len(), 2);
    assert!((stats.mean_node_power() - data.average_node_power()).abs() < 1e-6);
    assert!((stats.max_node_power() - data.max_node_power()).abs() < 1e-6);
    assert_eq!(
        stats.nodes.iter().map(|n| n.samples).sum::<usize>(),
        data.sample_count()
    );
    assert!(stats.nodes.iter().all(|n| n.complete));
    assert!(stats.energy_per_node_kj() > 0.0);
}

/// A node failure mid-job: the job fails, the monitor's aggregation
/// degrades to partial data from the downed rank, and the cluster keeps
/// scheduling on the surviving nodes.
#[test]
fn node_failure_degrades_gracefully() {
    use fluxpm::hw::NodeId;
    let mut world = World::new(MachineKind::Lassen, 4, 41);
    world.autostop_after = Some(2);
    let mut eng: FluxEngine = Engine::new();
    fluxpm::manager::load(
        &mut world,
        &mut eng,
        ManagerConfig::proportional(Watts(4800.0)),
    );
    fluxpm::monitor::load(&mut world, &mut eng, MonitorConfig::default());
    world.install_executor(&mut eng);
    let a = world.submit(
        &mut eng,
        JobSpec::new("Laghos", 2),
        Box::new(
            App::with_jitter(laghos(), MachineKind::Lassen, 2, 1, JitterModel::none())
                .with_work_seconds(500.0),
        ),
    );
    let b = world.submit(
        &mut eng,
        JobSpec::new("Laghos", 2),
        Box::new(
            App::with_jitter(laghos(), MachineKind::Lassen, 2, 2, JitterModel::none())
                .with_work_seconds(60.0),
        ),
    );
    // Fail node 1 (node 0 hosts the root agent; losing it would take the
    // whole telemetry service down — also realistic, but not this test).
    eng.schedule(fluxpm::sim::SimTime::from_secs(30), |w: &mut World, eng| {
        w.fail_node(eng, NodeId(1));
    });
    eng.run(&mut world);

    use fluxpm::flux::JobState;
    assert_eq!(world.jobs.get(a).unwrap().state, JobState::Failed);
    assert_eq!(world.jobs.get(b).unwrap().state, JobState::Completed);

    // Telemetry for the failed job: the downed rank contributes an empty
    // partial reply; the surviving rank still answers.
    let mut eng2: FluxEngine = Engine::new();
    let query = MonitorQuery::job_data(a).send(&mut world, &mut eng2);
    eng2.run(&mut world);
    let reply = query.job_data().unwrap().unwrap();
    assert_eq!(reply.nodes.len(), 2);
    assert!(!reply.all_complete(), "downed rank flagged partial");
    let live: usize = reply.nodes.iter().filter(|n| !n.records.is_empty()).count();
    assert_eq!(live, 1, "the surviving rank still reports");
}

/// The in-tree reduction returns the same aggregate as the direct
/// fan-out query, on a cluster large enough for a multi-level TBON.
#[test]
fn tree_reduction_agrees_with_direct_stats() {
    let mut world = World::new(MachineKind::Lassen, 16, 61);
    world.autostop_after = Some(1);
    let mut eng: FluxEngine = Engine::new();
    fluxpm::monitor::load(&mut world, &mut eng, MonitorConfig::default());
    world.install_executor(&mut eng);
    // A 10-node job spanning several subtrees of the binary TBON.
    let app = App::with_jitter(laghos(), MachineKind::Lassen, 10, 9, JitterModel::none())
        .with_work_scale(6.0);
    let id = world.submit(&mut eng, JobSpec::new("Laghos", 10), Box::new(app));
    eng.run(&mut world);

    let mut eng2: FluxEngine = Engine::new();
    let direct_query = MonitorQuery::job_stats(id).send(&mut world, &mut eng2);
    let tree_query = MonitorQuery::job_stats_tree(id).send(&mut world, &mut eng2);
    eng2.run(&mut world);
    let direct = direct_query.job_stats().unwrap().unwrap();
    let tree = tree_query.subtree_stats().unwrap().unwrap();

    assert_eq!(tree.nodes, 10);
    assert_eq!(
        tree.samples,
        direct.nodes.iter().map(|n| n.samples).sum::<usize>()
    );
    assert!((tree.mean_w() - direct.mean_node_power()).abs() < 1e-6);
    assert!((tree.max_w - direct.max_node_power()).abs() < 1e-6);
    assert!(tree.all_complete);
}

/// Telemetry-only operation on Tioga at queue scale: the monitor works
/// end-to-end while every capping dial stays refused — the early-access
/// posture the paper describes.
#[test]
fn tioga_queue_is_telemetry_only() {
    let mut scenario = Scenario::new(MachineKind::Tioga, 8)
        .with_label("tioga-queue")
        .with_monitor(MonitorConfig::default());
    for (i, (app, n)) in [
        ("LAMMPS", 4u32),
        ("Laghos", 2),
        ("Quicksilver", 2),
        ("LAMMPS", 8),
    ]
    .into_iter()
    .enumerate()
    {
        scenario = scenario.with_job(JobRequest::new(app, n).submit_at(i as f64 * 10.0));
    }
    let report = scenario.run();
    assert_eq!(report.jobs.len(), 4);
    // Every sample is the conservative CPU+OAM estimate (no node sensor),
    // and no software caps exist anywhere.
    for series in &report.node_series {
        for s in series {
            assert!(s.power_node_watts.is_none());
            assert!(s.power_mem_watts.is_none());
        }
    }
    // The HIP-anomalous Quicksilver runtime shows up even here.
    let q = report.job("Quicksilver").unwrap();
    assert!((95.0..115.0).contains(&q.runtime_s), "{}", q.runtime_s);
}

/// The trace plumbing captures manager decisions end-to-end.
#[test]
fn trace_records_manager_decisions() {
    use fluxpm::sim::{Trace, TraceLevel};
    let mut world = World::new(MachineKind::Lassen, 4, 3);
    world.trace = Trace::enabled(TraceLevel::Info);
    world.autostop_after = Some(2);
    let mut eng: FluxEngine = Engine::new();
    for n in &mut world.nodes {
        n.set_node_cap(Watts(1950.0)).unwrap();
    }
    fluxpm::manager::load(
        &mut world,
        &mut eng,
        ManagerConfig::proportional(Watts(4800.0)),
    );
    world.install_executor(&mut eng);
    for i in 0..2u64 {
        let app = App::with_jitter(laghos(), MachineKind::Lassen, 2, i, JitterModel::none())
            .with_work_seconds(30.0);
        world.submit(&mut eng, JobSpec::new("Laghos", 2), Box::new(app));
    }
    eng.run(&mut world);
    let admits = world
        .trace
        .for_subsystem("manager")
        .filter(|e| e.message.contains("admit"))
        .count();
    let reclaims = world
        .trace
        .for_subsystem("manager")
        .filter(|e| e.message.contains("reclaim"))
        .count();
    assert_eq!(admits, 2, "one admission per job");
    assert_eq!(reclaims, 2, "one reclaim per completion");
    let job_events = world.trace.for_subsystem("job").count();
    assert!(job_events >= 4, "submit/start/finish events traced");
}
