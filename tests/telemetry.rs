//! Subscription/push telemetry, end to end — the fan-out tentpole.
//!
//! Node agents push their newest sample to the root on a configurable
//! cadence; the root agent's `TelemetryHub` fans deltas out to bounded
//! per-subscriber queues. These tests drive the full in-sim lifecycle
//! over the RPC surface (`MonitorQuery::subscribe/poll/unsubscribe`):
//! register → receive ordered deltas → fall behind and get evicted →
//! re-subscribe and resume from the latest-per-node snapshot.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;

use fluxpm::flux::{Engine, FluxEngine, JobSpec, World};
use fluxpm::hw::MachineKind;
use fluxpm::monitor::{
    DeltaBatch, MonitorConfig, MonitorQuery, QueryHandle, SubscriberId, SubscriptionConfig,
    SubscriptionFilter, TelemetryHub,
};
use fluxpm::sim::{SimDuration, SimTime};
use fluxpm::workloads::{laghos, App, JitterModel};

/// A 4-node world with sample pushes every 2 s and one long job, so
/// telemetry flows for the whole observation window.
fn pushing_world(config: MonitorConfig) -> (World, FluxEngine) {
    let mut w = World::new(MachineKind::Lassen, 4, 37);
    let mut eng: FluxEngine = Engine::new();
    fluxpm::monitor::load(&mut w, &mut eng, config);
    w.install_executor(&mut eng);
    w.submit(
        &mut eng,
        JobSpec::new("Laghos", 4),
        Box::new(
            App::with_jitter(laghos(), MachineKind::Lassen, 4, 9, JitterModel::none())
                .with_work_seconds(500.0),
        ),
    );
    (w, eng)
}

type Slot<T> = Rc<RefCell<Option<T>>>;

fn slot<T>() -> Slot<T> {
    Rc::new(RefCell::new(None))
}

#[test]
fn subscription_lifecycle_over_rpc() {
    let (mut w, mut eng) =
        pushing_world(MonitorConfig::default().with_push_interval(SimDuration::from_secs(2)));

    // t=5: register a subscriber over the wire.
    let sub_q: Slot<QueryHandle> = slot();
    {
        let s = Rc::clone(&sub_q);
        eng.schedule(SimTime::from_secs(5), move |w: &mut World, eng| {
            let filter = SubscriptionFilter::all();
            *s.borrow_mut() = Some(MonitorQuery::subscribe(filter).send(w, eng));
        });
    }

    // t=15: drain the queue; ~5 push rounds x 4 nodes have landed.
    let first_poll: Slot<DeltaBatch> = slot();
    let sub_id: Slot<SubscriberId> = slot();
    {
        let (s, id, out) = (
            Rc::clone(&sub_q),
            Rc::clone(&sub_id),
            Rc::clone(&first_poll),
        );
        eng.schedule(SimTime::from_secs(15), move |w: &mut World, eng| {
            let sub = s
                .borrow()
                .as_ref()
                .expect("subscribe sent")
                .subscription()
                .expect("subscribe answered")
                .expect("subscribe succeeded");
            *id.borrow_mut() = Some(sub);
            let q = MonitorQuery::poll(sub, 1024).send(w, eng);
            let out = Rc::clone(&out);
            eng.schedule(
                SimTime::from_micros(15_500_000),
                move |_w: &mut World, _| {
                    *out.borrow_mut() = Some(q.deltas().expect("poll answered").expect("poll ok"));
                },
            );
        });
    }

    // t=20: unsubscribe; t=21: a poll for the dead id must error.
    let dead_poll: Slot<Result<DeltaBatch, String>> = slot();
    {
        let id = Rc::clone(&sub_id);
        eng.schedule(SimTime::from_secs(20), move |w: &mut World, eng| {
            let sub = id.borrow().expect("id resolved");
            MonitorQuery::unsubscribe(sub).send(w, eng);
        });
        let (id, out) = (Rc::clone(&sub_id), Rc::clone(&dead_poll));
        eng.schedule(SimTime::from_secs(21), move |w: &mut World, eng| {
            let sub = id.borrow().expect("id resolved");
            let q = MonitorQuery::poll(sub, 16).send(w, eng);
            let out = Rc::clone(&out);
            eng.schedule(
                SimTime::from_micros(21_500_000),
                move |_w: &mut World, _| {
                    *out.borrow_mut() = q.deltas();
                },
            );
        });
    }

    // t=25: re-subscribe. The new queue is seeded from the hub's
    // latest-per-node snapshot, so a poll *before the next push round*
    // already holds one delta per node.
    let reseed_poll: Slot<DeltaBatch> = slot();
    {
        let out = Rc::clone(&reseed_poll);
        eng.schedule(
            SimTime::from_micros(25_100_000),
            move |w: &mut World, eng| {
                let q = MonitorQuery::subscribe(SubscriptionFilter::all()).send(w, eng);
                let out = Rc::clone(&out);
                eng.schedule(
                    SimTime::from_micros(25_500_000),
                    move |w: &mut World, eng| {
                        let sub = q
                            .subscription()
                            .expect("re-subscribe answered")
                            .expect("re-subscribe ok");
                        let q = MonitorQuery::poll(sub, 16).send(w, eng);
                        let out = Rc::clone(&out);
                        eng.schedule(
                            SimTime::from_micros(25_900_000),
                            move |_w: &mut World, _| {
                                *out.borrow_mut() =
                                    Some(q.deltas().expect("poll answered").expect("poll ok"));
                            },
                        );
                    },
                );
            },
        );
    }

    eng.run_until(&mut w, SimTime::from_secs(30));

    // First drain: non-empty, lossless, strictly ordered, all 4 nodes.
    let batch = first_poll.borrow().clone().expect("first poll resolved");
    assert!(!batch.deltas.is_empty(), "deltas flowed by t=15");
    assert_eq!(batch.dropped, 0, "no loss at this cadence");
    assert!(
        batch.deltas.windows(2).all(|p| p[0].seq < p[1].seq),
        "deltas arrive in publication order"
    );
    let nodes: BTreeSet<u32> = batch.deltas.iter().map(|d| d.node).collect();
    assert_eq!(nodes.len(), 4, "every node's pushes reached the hub");
    assert!(
        batch.deltas.iter().all(|d| d.job.is_some()),
        "deltas carry job attribution while the job runs"
    );

    // Dead-id poll: a typed error, not a hang or empty batch.
    let err = dead_poll
        .borrow()
        .clone()
        .expect("dead poll resolved")
        .expect_err("polling an unsubscribed id errors");
    assert!(err.contains("unknown subscriber"), "got: {err}");

    // Re-subscribe resumed from the snapshot: one delta per node,
    // without waiting for a fresh push round.
    let batch = reseed_poll.borrow().clone().expect("re-seed poll resolved");
    let nodes: Vec<u32> = batch.deltas.iter().map(|d| d.node).collect();
    let unique: BTreeSet<u32> = nodes.iter().copied().collect();
    assert_eq!(
        (nodes.len(), unique.len()),
        (4, 4),
        "snapshot seeds exactly one latest delta per node: {nodes:?}"
    );
}

/// A subscriber that never polls overruns its bounded queue and is
/// evicted once its cumulative drops pass the configured threshold —
/// the hub protects itself, the consumer finds out at the next poll.
#[test]
fn slow_subscriber_is_evicted_and_can_resubscribe() {
    let (mut w, mut eng) = pushing_world(
        MonitorConfig::default()
            .with_push_interval(SimDuration::from_secs(2))
            .with_subscriber_queue_capacity(2)
            .with_subscriber_evict_after_drops(3),
    );

    let sub_id: Slot<SubscriberId> = slot();
    {
        let id = Rc::clone(&sub_id);
        eng.schedule(SimTime::from_secs(2), move |w: &mut World, eng| {
            let q = MonitorQuery::subscribe(SubscriptionFilter::all()).send(w, eng);
            let id = Rc::clone(&id);
            eng.schedule(SimTime::from_secs(3), move |_w: &mut World, _| {
                *id.borrow_mut() = Some(q.subscription().unwrap().unwrap());
            });
        });
    }

    // By t=20, ~9 push rounds x 4 nodes >> capacity 2 + threshold 3:
    // the subscriber is long gone. Its poll errors; a fresh subscribe
    // still works and polls cleanly.
    let evicted_poll: Slot<Result<DeltaBatch, String>> = slot();
    let fresh_poll: Slot<Result<DeltaBatch, String>> = slot();
    {
        let (id, out) = (Rc::clone(&sub_id), Rc::clone(&evicted_poll));
        eng.schedule(SimTime::from_secs(20), move |w: &mut World, eng| {
            let sub = id.borrow().expect("id resolved");
            let q = MonitorQuery::poll(sub, 16).send(w, eng);
            let out = Rc::clone(&out);
            eng.schedule(
                SimTime::from_micros(20_500_000),
                move |_w: &mut World, _| {
                    *out.borrow_mut() = q.deltas();
                },
            );
        });
        let out = Rc::clone(&fresh_poll);
        eng.schedule(SimTime::from_secs(21), move |w: &mut World, eng| {
            let q = MonitorQuery::subscribe(SubscriptionFilter::all()).send(w, eng);
            let out = Rc::clone(&out);
            eng.schedule(
                SimTime::from_micros(21_500_000),
                move |w: &mut World, eng| {
                    let sub = q.subscription().unwrap().unwrap();
                    let q = MonitorQuery::poll(sub, 16).send(w, eng);
                    let out = Rc::clone(&out);
                    eng.schedule(
                        SimTime::from_micros(21_900_000),
                        move |_w: &mut World, _| {
                            *out.borrow_mut() = q.deltas();
                        },
                    );
                },
            );
        });
    }

    eng.run_until(&mut w, SimTime::from_secs(25));

    let err = evicted_poll
        .borrow()
        .clone()
        .expect("evicted poll resolved")
        .expect_err("evicted subscriber's poll errors");
    assert!(err.contains("unknown subscriber"), "got: {err}");
    let batch = fresh_poll
        .borrow()
        .clone()
        .expect("fresh poll resolved")
        .expect("fresh subscriber polls cleanly");
    assert!(
        !batch.deltas.is_empty(),
        "eviction of one subscriber never poisons the hub"
    );
}

/// Link-health telemetry rides the same push path as power: with
/// `link_export_interval` set, the root agent publishes every active
/// TBON edge's queueing state into the hub. Under a congested link the
/// exported EWMA delay is visibly nonzero, a consumer too slow to keep
/// up with the combined power+link stream is still evicted (the hub's
/// bounded-memory contract is load-independent), and a re-subscriber is
/// seeded from *both* snapshots — latest power per node and latest
/// health per link.
#[test]
fn congested_link_health_reaches_subscribers_and_sheds_slow_consumers() {
    use fluxpm::flux::{FaultPlan, Rank};

    let (mut w, mut eng) = pushing_world(
        MonitorConfig::default()
            .with_push_interval(SimDuration::from_secs(2))
            .with_link_export_interval(SimDuration::from_secs(2))
            .with_subscriber_queue_capacity(8)
            .with_subscriber_evict_after_drops(8),
    );
    // Rank 1's uplink is severely congested for the whole run: slow but
    // alive, so pushes still land and the EWMA delay shows the queueing.
    w.install_fault_plan(FaultPlan::uniform(0.0, SimDuration::ZERO).with_congestion(
        Rank(0),
        Rank(1),
        SimTime::ZERO..SimTime::from_secs(60),
        0.999,
    ));

    // A subscriber registered at t=1 and never polled: by t=20 the
    // combined power+link stream has shed far past the threshold.
    let lazy_id: Slot<SubscriberId> = slot();
    {
        let id = Rc::clone(&lazy_id);
        eng.schedule(SimTime::from_secs(1), move |w: &mut World, eng| {
            let q = MonitorQuery::subscribe(SubscriptionFilter::all()).send(w, eng);
            let id = Rc::clone(&id);
            eng.schedule(SimTime::from_secs(2), move |_w: &mut World, _| {
                *id.borrow_mut() = Some(q.subscription().unwrap().unwrap());
            });
        });
    }

    let evicted_poll: Slot<Result<DeltaBatch, String>> = slot();
    {
        let (id, out) = (Rc::clone(&lazy_id), Rc::clone(&evicted_poll));
        eng.schedule(SimTime::from_secs(20), move |w: &mut World, eng| {
            let sub = id.borrow().expect("id resolved");
            let q = MonitorQuery::poll(sub, 16).send(w, eng);
            let out = Rc::clone(&out);
            eng.schedule(
                SimTime::from_micros(20_500_000),
                move |_w: &mut World, _| {
                    *out.borrow_mut() = q.deltas();
                },
            );
        });
    }

    // A fresh subscriber at t=21 re-seeds from both snapshot kinds
    // before any new publish round lands.
    let reseed_poll: Slot<DeltaBatch> = slot();
    {
        let out = Rc::clone(&reseed_poll);
        eng.schedule(
            SimTime::from_micros(21_100_000),
            move |w: &mut World, eng| {
                let q = MonitorQuery::subscribe(SubscriptionFilter::all()).send(w, eng);
                let out = Rc::clone(&out);
                eng.schedule(
                    SimTime::from_micros(21_400_000),
                    move |w: &mut World, eng| {
                        let sub = q.subscription().unwrap().unwrap();
                        let q = MonitorQuery::poll(sub, 64).send(w, eng);
                        let out = Rc::clone(&out);
                        eng.schedule(
                            SimTime::from_micros(21_800_000),
                            move |_w: &mut World, _| {
                                *out.borrow_mut() =
                                    Some(q.deltas().expect("poll answered").expect("poll ok"));
                            },
                        );
                    },
                );
            },
        );
    }

    eng.run_until(&mut w, SimTime::from_secs(25));

    let err = evicted_poll
        .borrow()
        .clone()
        .expect("evicted poll resolved")
        .expect_err("slow consumer of the combined stream is evicted");
    assert!(err.contains("unknown subscriber"), "got: {err}");

    let batch = reseed_poll.borrow().clone().expect("re-seed resolved");
    let power: Vec<u32> = batch
        .deltas
        .iter()
        .filter(|d| d.link.is_none())
        .map(|d| d.node)
        .collect();
    let links: Vec<(u32, u32)> = batch
        .deltas
        .iter()
        .filter_map(|d| d.link.as_ref().map(|l| (d.node, l.parent)))
        .collect();
    assert_eq!(power.len(), 4, "one power snapshot per node: {power:?}");
    assert_eq!(
        links,
        vec![(1, 0), (2, 0), (3, 1)],
        "one health snapshot per active edge"
    );
    let congested = batch
        .deltas
        .iter()
        .find_map(|d| (d.node == 1).then_some(d.link.as_ref()).flatten())
        .expect("link 1-0 exported");
    assert!(
        congested.ewma_delay_us > 10.0,
        "severity 0.999 must show up in the EWMA: {congested:?}"
    );
    assert!(congested.delivered > 0, "slow but alive, not lossy");
    assert!(
        batch
            .deltas
            .iter()
            .filter(|d| d.link.is_some())
            .all(|d| d.job.is_none()),
        "link deltas carry no job attribution"
    );
}

/// Cadence floor: a `min_interval_us` filter thins per-node updates to
/// the requested rate while a firehose subscriber sees everything.
#[test]
fn cadence_filter_thins_updates() {
    let mut hub = TelemetryHub::new(SubscriptionConfig::default());
    let firehose = hub.subscribe(SubscriptionFilter::all());
    let slow = hub.subscribe(SubscriptionFilter::all().with_min_interval_us(5_000_000));
    for tick in 0u64..10 {
        hub.publish(0, tick * 2_000_000, 900.0, None);
    }
    let (all, _) = hub.poll(firehose, 64).expect("firehose alive");
    let (thinned, _) = hub.poll(slow, 64).expect("slow alive");
    assert_eq!(all.len(), 10);
    // 2 s pushes against a 5 s floor: t=0,6,12,18 pass (gap >= 5 s).
    let times: Vec<u64> = thinned.iter().map(|d| d.timestamp_us).collect();
    assert_eq!(times, vec![0, 6_000_000, 12_000_000, 18_000_000]);
}

/// The fan-out core holds a thousand concurrent subscribers: every
/// matching delta lands once in every queue, bounded memory throughout.
/// (BENCH_telemetry.json benches the same path at scale.)
#[test]
fn hub_fans_out_to_a_thousand_subscribers() {
    let mut hub = TelemetryHub::new(SubscriptionConfig::default());
    let subs: Vec<SubscriberId> = (0..1000)
        .map(|_| hub.subscribe(SubscriptionFilter::all()))
        .collect();
    assert_eq!(hub.subscriber_count(), 1000);
    for node in 0u32..4 {
        let n = hub.publish(node, 2_000_000, 850.0, None);
        assert_eq!(n, 1000, "every subscriber matched");
    }
    assert_eq!(hub.fanned_out(), 4000);
    for &s in &subs {
        let stats = hub.stats(s).expect("subscriber alive");
        assert_eq!((stats.queued, stats.dropped), (4, 0));
    }
    let (deltas, dropped) = hub.poll(subs[500], 64).expect("alive");
    assert_eq!((deltas.len(), dropped), (4, 0));
}
