//! Fleet-scale sharded soak: a 100k+-rank TBON storm — periodic
//! telemetry up, cap waves down, scripted outages throughout — must
//! complete across worker-thread shards in seconds, and the merged
//! trace must not depend on how many shards computed it.
//!
//! These runs deliberately leave `RUST_TEST_THREADS` unconstrained: the
//! shard coordinator spawns its own worker threads, and the whole point
//! is to exercise real parallelism under the conservative-window
//! protocol (see `DESIGN.md` §9).

use fluxpm::experiments::sharded::sharded_storm;
use fluxpm::flux::shard::ShardStormConfig;
use std::time::Instant;

#[test]
fn hundred_k_rank_fleet_soak_completes() {
    let ranks: u32 = 100_000;
    let cfg = ShardStormConfig::fleet(ranks, 8, 0xF1EE7);
    let start = Instant::now();
    let out = sharded_storm(&cfg);
    let elapsed = start.elapsed();
    // Every rank ticked every period; the coordinator saw real
    // cross-shard traffic; the outage script actually fired.
    let floor = ranks as u64 * cfg.periods as u64;
    assert!(
        out.events > floor,
        "expected >{floor} events, got {}",
        out.events
    );
    assert!(out.boundary_msgs > 0, "cut edges must carry traffic");
    assert!(out.drops > 0, "outage script must drop reports");
    assert!(out.windows > 0);
    // Generous ceiling so CI never flakes; locally this is seconds even
    // unoptimized. A hung coordinator times out the suite instead.
    assert!(
        elapsed.as_secs() < 300,
        "soak took {elapsed:?} — coordinator is not making progress"
    );
    println!(
        "soak: {ranks} ranks, 8 shards: {} events, {} windows, \
         {} boundary msgs, {} drops in {elapsed:?}",
        out.events, out.windows, out.boundary_msgs, out.drops
    );
}

#[test]
fn fleet_trace_hash_is_shard_count_invariant() {
    // Smaller fleet so the cross-check stays cheap: the byte-level
    // equivalence is covered exhaustively in determinism.rs; here we
    // confirm the *fleet* config (deep fanout-16 tree, forwards off)
    // also merges identically at production-like shard counts.
    let base = ShardStormConfig::fleet(20_000, 4, 42);
    let four = sharded_storm(&base);
    let mut cfg = base;
    cfg.shards = 8;
    let eight = sharded_storm(&cfg);
    assert_eq!(four.trace_hash, eight.trace_hash);
    assert_eq!(four.records, eight.records);
    assert_eq!(four.drops, eight.drops);
    assert!(eight.boundary_msgs >= four.boundary_msgs);
}
