//! Golden-file replay: byte-identical artifacts across engine changes.
//!
//! These tests pin the *observable outputs* of a deterministic
//! monitor+manager run — the full debug event trace, the client's
//! telemetry CSV, and the per-topic RPC-health CSV — to committed
//! golden files. Any change to the event core (queue order, timer
//! semantics, message forwarding) that perturbs event ordering shows up
//! here as a byte diff, even if the run still "works".
//!
//! After an *intentional* behavior change, regenerate with
//! `GOLDEN_REGEN=1 cargo test --test golden_replay` and review the diff
//! like source code.

use fluxpm::flux::{Engine, FaultPlan, FluxEngine, JobSpec, JobState, World};
use fluxpm::hw::{MachineKind, Watts};
use fluxpm::manager::ManagerConfig;
use fluxpm::monitor::{job_data_to_csv, rpc_stats_to_csv, MonitorConfig, MonitorQuery};
use fluxpm::sim::{SimDuration, Trace, TraceLevel};
use fluxpm::workloads::{laghos, App, JitterModel};

mod common;

/// One deterministic 8-node run with lossy links: monitor sampling,
/// proportional manager, two Laghos jobs, 3 % uniform message loss so
/// the retry/timeout paths execute. Returns the world post-run plus the
/// id of the first job.
fn replay_world() -> (World, fluxpm::flux::JobId) {
    let mut world = World::new(MachineKind::Lassen, 8, 1234);
    world.trace = Trace::enabled(TraceLevel::Debug);
    world.autostop_after = Some(2);
    let mut eng: FluxEngine = Engine::new();
    for n in &mut world.nodes {
        n.set_node_cap(Watts(1950.0)).unwrap();
    }
    fluxpm::manager::load(
        &mut world,
        &mut eng,
        ManagerConfig::proportional(Watts(9600.0)),
    );
    fluxpm::monitor::load(&mut world, &mut eng, MonitorConfig::default());
    world.install_executor(&mut eng);
    world.install_fault_plan(FaultPlan::uniform(0.03, SimDuration::from_micros(15)));

    let app_a = App::with_jitter(laghos(), MachineKind::Lassen, 4, 1, JitterModel::none())
        .with_work_seconds(40.0);
    let a = world.submit(&mut eng, JobSpec::new("Laghos", 4), Box::new(app_a));
    let app_b = App::with_jitter(laghos(), MachineKind::Lassen, 2, 2, JitterModel::none())
        .with_work_seconds(25.0);
    world.submit(&mut eng, JobSpec::new("Laghos", 2), Box::new(app_b));
    eng.run(&mut world);

    assert!(world.jobs.all_complete());
    assert_eq!(world.jobs.get(a).unwrap().state, JobState::Completed);
    (world, a)
}

/// The full debug trace of the run — every message hop, sample, and
/// state transition, in delivery order — matches the committed golden.
#[test]
fn event_trace_matches_golden() {
    let (world, _) = replay_world();
    let trace: String = world
        .trace
        .entries()
        .iter()
        .map(|e| format!("{e}\n"))
        .collect();
    common::check_golden(
        &trace,
        "tests/golden/replay_8node.trace",
        include_str!("golden/replay_8node.trace"),
    );
}

/// The client-facing telemetry CSV for job A and the RPC-health CSV
/// match their goldens, byte for byte.
#[test]
fn monitor_csvs_match_golden() {
    let (mut world, a) = replay_world();
    let mut eng2: FluxEngine = Engine::new();
    let query = MonitorQuery::job_data(a).send(&mut world, &mut eng2);
    eng2.run(&mut world);
    let reply = query.job_data().unwrap().unwrap();
    assert_eq!(reply.nodes.len(), 4);

    common::check_golden(
        &job_data_to_csv(&reply),
        "tests/golden/replay_8node_job_data.csv",
        include_str!("golden/replay_8node_job_data.csv"),
    );
    common::check_golden(
        &rpc_stats_to_csv(&world),
        "tests/golden/replay_8node_rpc_stats.csv",
        include_str!("golden/replay_8node_rpc_stats.csv"),
    );
}
