//! Event-log replay across full instance death — the durability
//! tentpole, end to end.
//!
//! Every root service (cluster budgets, job-manager limit mirrors, the
//! monitor's in-flight aggregations) derives its state from the
//! `World`-owned `StateLog`. These tests assert the contract at its
//! hardest point: the *entire* instance dies (root fails with no live
//! successor), the first `recover_node` resurrects it, and the replayed
//! root services match the pre-crash live state **byte for byte** —
//! including the snapshot+tail path, not just a cold fold of the full
//! log.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use fluxpm::flux::{Engine, FluxEngine, JobSpec, Module, Rank, World};
use fluxpm::hw::{MachineKind, NodeId, Watts};
use fluxpm::manager::cluster::CLUSTER_MANAGER;
use fluxpm::manager::job_mgr::JOB_MANAGER;
use fluxpm::manager::{ClusterLevelManager, JobLevelManager, ManagerConfig};
use fluxpm::monitor::root_agent::{RootAgent, ROOT_AGENT};
use fluxpm::monitor::{MonitorConfig, MonitorQuery};
use fluxpm::sim::{SimDuration, SimTime, Trace, TraceLevel};
use fluxpm::workloads::{laghos, App, JitterModel};

/// Debug-format a live root service's snapshot, fetched from the
/// current root's broker.
fn live_fingerprint(w: &World, name: &str) -> String {
    let m = w.brokers[w.root().index()]
        .module(name)
        .unwrap_or_else(|| panic!("{name} registered on root"));
    let snap = m.borrow().snapshot();
    format!("{snap:?}")
}

/// Fold the world's state log into a freshly constructed module —
/// exactly what `recover_node` does on resurrection — and return the
/// Debug form of the resulting snapshot.
fn replay_fingerprint<M: Module>(w: &World, module: &mut M) -> String {
    let name = module.name();
    if let Some(v) = w.state.snapshot().and_then(|s| s.modules.get(name)) {
        module.restore(v);
    }
    for ev in w.state.tail_for(name) {
        module.apply_event(ev);
    }
    format!("{:?}", module.snapshot())
}

/// The tentpole scenario: budgets admitted and partially released, a
/// client aggregation stalled on a dead leaf, a periodic snapshot
/// already folded into the log — then every node dies at once. Replay
/// from the log must reproduce the pre-crash state byte-identically,
/// and `recover_node` must resurrect the instance from it.
#[test]
fn full_instance_death_replays_to_precrash_state() {
    let bound = Watts(4800.0);
    let mut w = World::new(MachineKind::Lassen, 4, 23);
    w.trace = Trace::enabled(TraceLevel::Info);
    let mut eng: FluxEngine = Engine::new();
    fluxpm::manager::load(&mut w, &mut eng, ManagerConfig::proportional(bound));
    let mon_cfg = MonitorConfig::default();
    fluxpm::monitor::load(&mut w, &mut eng, mon_cfg.clone());
    w.install_executor(&mut eng);

    // Periodic snapshots, so the crash-time replay exercises
    // restore(snapshot at t=20) + apply(tail), not a cold full-log fold.
    w.schedule_state_snapshots(
        &mut eng,
        SimTime::from_secs(20),
        SimDuration::from_secs(300),
    );

    // Two long jobs so both are mid-flight at every probe point. The
    // scheduler packs first-fit: job A on ranks {0,1}, job B on {2,3}.
    let a = w.submit(
        &mut eng,
        JobSpec::new("Laghos", 2),
        Box::new(
            App::with_jitter(laghos(), MachineKind::Lassen, 2, 5, JitterModel::none())
                .with_work_seconds(500.0),
        ),
    );
    let b = w.submit(
        &mut eng,
        JobSpec::new("Laghos", 2),
        Box::new(
            App::with_jitter(laghos(), MachineKind::Lassen, 2, 6, JitterModel::none())
                .with_work_seconds(500.0),
        ),
    );

    // t=30: a leaf dies. Job B fails; the cluster manager logs the
    // release and re-pushes job A's limit — post-snapshot tail events.
    eng.schedule(SimTime::from_secs(30), |w: &mut World, eng| {
        w.fail_node(eng, NodeId(3));
    });

    // t=31: query the failed job. Its record still lists dead rank 3,
    // so the fan-out stalls on the 1 s RPC deadline — a live in-flight
    // aggregation sitting in the root agent when the crash lands.
    let handle = Rc::new(RefCell::new(None));
    {
        let h = Rc::clone(&handle);
        eng.schedule(SimTime::from_secs(31), move |w: &mut World, eng| {
            *h.borrow_mut() = Some(MonitorQuery::job_data(b).send(w, eng));
        });
    }

    // t=31.1: capture the live pre-crash snapshots of every root service.
    let pre = Rc::new(RefCell::new(BTreeMap::new()));
    {
        let pre = Rc::clone(&pre);
        eng.schedule(
            SimTime::from_micros(31_100_000),
            move |w: &mut World, _eng| {
                for name in [CLUSTER_MANAGER, JOB_MANAGER, ROOT_AGENT] {
                    pre.borrow_mut().insert(name, live_fingerprint(w, name));
                }
            },
        );
    }

    // t=31.2: everything else dies inside the stall window — full
    // instance death, root included, no live successor to migrate to.
    eng.schedule(SimTime::from_micros(31_200_000), |w: &mut World, eng| {
        w.fail_nodes(eng, &[NodeId(0), NodeId(1), NodeId(2)]);
    });

    // Bounded run: the snapshot scheduler ticks forever, so drive the
    // sim explicitly past the crash instead of draining the queue.
    eng.run_until(&mut w, SimTime::from_secs(35));

    let pre = pre.borrow();
    assert_eq!(pre.len(), 3, "all three root services fingerprinted");
    // The stalled aggregation was captured while genuinely in flight.
    assert!(
        pre[ROOT_AGENT].contains("tag"),
        "root agent had an in-flight aggregation at crash time: {}",
        pre[ROOT_AGENT]
    );
    assert!(
        w.state.snapshots_taken() >= 1,
        "t=20 periodic snapshot landed before the crash"
    );
    let trace: String = w.trace.entries().iter().map(|e| format!("{e}\n")).collect();
    assert!(
        trace.contains("failed with no live successor"),
        "instance death traced:\n{trace}"
    );

    // --- The byte-identical claim -----------------------------------
    // Fold the log into fresh modules exactly as resurrection does and
    // compare against the live pre-crash snapshots.
    let mut cluster = ClusterLevelManager::new(ManagerConfig::proportional(bound));
    assert_eq!(
        replay_fingerprint(&w, &mut cluster),
        pre[CLUSTER_MANAGER],
        "cluster budgets replay byte-identically"
    );
    let mut jobs = JobLevelManager::new();
    assert_eq!(
        replay_fingerprint(&w, &mut jobs),
        pre[JOB_MANAGER],
        "job-manager limit mirrors replay byte-identically"
    );
    let mut agent = RootAgent::new(mon_cfg.rpc_deadline);
    assert_eq!(
        replay_fingerprint(&w, &mut agent),
        pre[ROOT_AGENT],
        "in-flight aggregations replay byte-identically"
    );

    // --- End-to-end resurrection ------------------------------------
    let mut eng2: FluxEngine = Engine::new();
    assert!(w.recover_node(&mut eng2, NodeId(1)));
    assert_eq!(w.root(), Rank(1), "first recovered rank becomes root");
    let trace: String = w.trace.entries().iter().map(|e| format!("{e}\n")).collect();
    assert!(trace.contains("instance resurrected with rank1 as root"));
    for name in [CLUSTER_MANAGER, JOB_MANAGER, ROOT_AGENT] {
        assert!(
            trace.contains(&format!("resurrected {name} on rank1 from state log")),
            "{name} rebuilt from the log:\n{trace}"
        );
    }
    // The root agent found the stalled aggregation in the log and
    // restarted its fan-out from the new root.
    assert!(
        trace.contains("re-issuing 1 in-flight aggregation(s)"),
        "stalled aggregation re-issued:\n{trace}"
    );
    // The cluster manager's migration hook only re-pushes limits, so
    // its resurrected snapshot is *immediately* byte-identical.
    assert_eq!(
        live_fingerprint(&w, CLUSTER_MANAGER),
        pre[CLUSTER_MANAGER],
        "resurrected cluster manager matches pre-crash state"
    );

    // Drain the re-issued fan-out: the dead ranks time out, the
    // aggregation finishes (inflight empties — satellite: no zombie
    // entries), and job A is still the one admitted job.
    eng2.run_until(&mut w, SimTime::from_secs(40));
    let agent_fp = live_fingerprint(&w, ROOT_AGENT);
    assert!(
        agent_fp.contains("\"inflight\": List([])"),
        "re-issued aggregation resolved and was removed from inflight: {agent_fp}"
    );
    assert!(
        live_fingerprint(&w, CLUSTER_MANAGER).contains(&format!("{}", a.0)),
        "job A still admitted after resurrection"
    );
}

/// Replay must be quiescent: folding the log into fresh modules twice
/// in a row yields the same bytes (apply_event never sends, schedules,
/// or appends — so replay cannot feed back into the log).
#[test]
fn replay_is_idempotent_and_silent() {
    let mut w = World::new(MachineKind::Lassen, 4, 29);
    let mut eng: FluxEngine = Engine::new();
    w.autostop_after = Some(1);
    fluxpm::manager::load(&mut w, &mut eng, ManagerConfig::proportional(Watts(4800.0)));
    fluxpm::monitor::load(&mut w, &mut eng, MonitorConfig::default());
    w.install_executor(&mut eng);
    w.submit(
        &mut eng,
        JobSpec::new("Laghos", 2),
        Box::new(
            App::with_jitter(laghos(), MachineKind::Lassen, 2, 7, JitterModel::none())
                .with_work_seconds(30.0),
        ),
    );
    eng.run(&mut w);

    let appended = w.state.total_appended();
    assert!(appended > 0, "the run logged state events");

    let mut first = ClusterLevelManager::new(ManagerConfig::proportional(Watts(4800.0)));
    let fp1 = replay_fingerprint(&w, &mut first);
    let mut second = ClusterLevelManager::new(ManagerConfig::proportional(Watts(4800.0)));
    let fp2 = replay_fingerprint(&w, &mut second);
    assert_eq!(fp1, fp2, "replay is deterministic");
    assert_eq!(
        w.state.total_appended(),
        appended,
        "replay appended nothing to the log"
    );
}
